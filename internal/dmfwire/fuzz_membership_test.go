package dmfwire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeMembership hardens the gossip decoder: a membership message
// arrives from whatever answers POST /api/v1/cluster/gossip, so any byte
// sequence must either decode into a valid, canonical Membership or fail
// with ErrMembership — never panic, hang, or allocate proportionally to a
// lying count field.
func FuzzDecodeMembership(f *testing.F) {
	if data, err := EncodeMembership(testMembership()); err == nil {
		f.Add(data)
	}
	f.Add([]byte("%DMFMEM1 from=http://a peers=1 crc32c=00000000\nhttp://a inc=1 state=alive\n%DMFRING1 epoch=1 replicas=1 vnodes=1 seed=0 peers=1 crc32c=00000000\nhttp://a\n"))
	f.Add([]byte("%DMFMEM1 from=http://a peers=999999999 crc32c=00000000\n"))
	f.Add([]byte("%DMFMEM1\n"))
	f.Add([]byte("%DMFRING1 epoch=1 replicas=1 vnodes=1 seed=0 peers=1 crc32c=00000000\nhttp://a\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMembership(data)
		if err != nil {
			if !errors.Is(err, ErrMembership) {
				t.Fatalf("decode error does not wrap ErrMembership: %v", err)
			}
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("decoded membership fails validation: %v", err)
		}
		again, err := EncodeMembership(m)
		if err != nil {
			t.Fatalf("decoded membership fails re-encoding: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("decode/encode round-trip changed the bytes:\n%q\nvs\n%q", data, again)
		}
	})
}

// FuzzDecodeHint hardens the hinted-handoff record decoder: hint files are
// read back from disk after arbitrary crashes, so torn, truncated or
// corrupted records must fail with ErrHint rather than replaying garbage
// to a recovered peer.
func FuzzDecodeHint(f *testing.F) {
	if data, err := EncodeHint(testHint()); err == nil {
		f.Add(data)
	}
	f.Add([]byte("%DMFHINT1 owner=http://a app=a experiment=e trial=t len=2 crc32c=00000000\n{}"))
	f.Add([]byte("%DMFHINT1 owner=http://a app=a experiment=e trial=t len=999999999999 crc32c=00000000\n"))
	f.Add([]byte("%DMFHINT1\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHint(data)
		if err != nil {
			if !errors.Is(err, ErrHint) {
				t.Fatalf("decode error does not wrap ErrHint: %v", err)
			}
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("decoded hint fails validation: %v", err)
		}
		again, err := EncodeHint(h)
		if err != nil {
			t.Fatalf("decoded hint fails re-encoding: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("decode/encode round-trip changed the bytes:\n%q\nvs\n%q", data, again)
		}
	})
}
