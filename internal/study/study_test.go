package study

import (
	"fmt"
	"strconv"
	"testing"

	"perfknow/internal/apps/msa"
	"perfknow/internal/machine"
	"perfknow/internal/perfdmf"
	"perfknow/internal/sim"
)

func TestGrid(t *testing.T) {
	pts := Grid(map[string][]string{
		"threads":  {"1", "2", "4"},
		"schedule": {"static", "dynamic,1"},
	})
	if len(pts) != 6 {
		t.Fatalf("grid size = %d, want 6", len(pts))
	}
	seen := map[string]bool{}
	for _, p := range pts {
		seen[p.Name()] = true
	}
	if !seen["schedule=static,threads=4"] || !seen["schedule=dynamic,1,threads=1"] {
		t.Fatalf("grid points: %v", seen)
	}
	// Deterministic order.
	pts2 := Grid(map[string][]string{
		"threads":  {"1", "2", "4"},
		"schedule": {"static", "dynamic,1"},
	})
	for i := range pts {
		if pts[i].Name() != pts2[i].Name() {
			t.Fatal("grid order not deterministic")
		}
	}
	if len(Grid(nil)) != 1 {
		t.Fatal("empty grid should be the single empty point")
	}
}

func TestStudyRunAndSeries(t *testing.T) {
	st := &Study{App: "MSAP", Experiment: "schedule sweep"}
	points := Grid(map[string][]string{
		"threads":  {"1", "2", "4"},
		"schedule": {"static", "dynamic,1"},
	})
	trials, err := st.Run(points, func(p Point) (*perfdmf.Trial, error) {
		threads, err := strconv.Atoi(p["threads"])
		if err != nil {
			return nil, err
		}
		sched, err := sim.ParseSchedule(p["schedule"])
		if err != nil {
			return nil, err
		}
		return msa.Run(machine.Altix(4, 2), msa.Params{
			Sequences: 32, MeanLen: 80, LenJitter: 40, Seed: 42,
			Threads: threads, Schedule: sched,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 6 {
		t.Fatalf("trials: %d", len(trials))
	}
	// Everything landed in the repository under the study's names.
	names := st.Repo.Trials("MSAP", "schedule sweep")
	if len(names) != 6 {
		t.Fatalf("stored trials: %v", names)
	}
	got, err := st.Repo.GetTrial("MSAP", "schedule sweep", "schedule=static,threads=2")
	if err != nil {
		t.Fatal(err)
	}
	if got.Metadata["param:schedule"] != "static" || got.Metadata["param:threads"] != "2" {
		t.Fatalf("metadata: %v", got.Metadata)
	}

	// Series by thread count, one per schedule.
	series, err := Series(trials, "threads", perfdmf.TimeMetric)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series groups: %v", series)
	}
	dyn := series["schedule=dynamic,1"]
	if len(dyn) != 3 || dyn[0].X != 1 || dyn[2].X != 4 {
		t.Fatalf("dynamic series: %+v", dyn)
	}
	// Time decreases with threads for the balanced schedule.
	if !(dyn[0].Y > dyn[1].Y && dyn[1].Y > dyn[2].Y) {
		t.Fatalf("dynamic series not decreasing: %+v", dyn)
	}
	// At 4 threads, dynamic beats static.
	stat := series["schedule=static"]
	if stat[2].Y <= dyn[2].Y {
		t.Fatalf("static (%g) should be slower than dynamic (%g) at 4 threads", stat[2].Y, dyn[2].Y)
	}
}

func TestStudyErrors(t *testing.T) {
	st := &Study{App: "a", Experiment: "e"}
	if _, err := st.Run(nil, nil); err == nil {
		t.Fatal("empty points accepted")
	}
	_, err := st.Run([]Point{{"x": "1"}}, func(Point) (*perfdmf.Trial, error) {
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("runner error swallowed")
	}

	// Series errors.
	tr := perfdmf.NewTrial("a", "e", "t", 1)
	tr.AddMetric(perfdmf.TimeMetric)
	tr.EnsureEvent("main").SetValue(perfdmf.TimeMetric, 0, 1, 1)
	if _, err := Series([]*perfdmf.Trial{tr}, "threads", perfdmf.TimeMetric); err == nil {
		t.Fatal("missing parameter accepted")
	}
	tr.Metadata["param:threads"] = "abc"
	if _, err := Series([]*perfdmf.Trial{tr}, "threads", perfdmf.TimeMetric); err == nil {
		t.Fatal("non-numeric parameter accepted")
	}
}
