// Package study drives parametric studies: the multi-experiment data
// collection the paper's introduction motivates ("parametric studies,
// modeling, and optimization strategies require large amounts of data to be
// collected and processed"). A Study sweeps a workload over a parameter
// grid, stamps every resulting trial with its parameter point as metadata,
// stores everything in a PerfDMF repository, and extracts series for
// scalability and sensitivity analysis.
package study

import (
	"fmt"
	"sort"
	"strconv"

	"perfknow/internal/perfdmf"
)

// Point is one assignment of parameter values.
type Point map[string]string

// clone copies a point.
func (p Point) clone() Point {
	out := make(Point, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Name renders the point as a stable trial-name suffix (sorted key=value).
func (p Point) Name() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += k + "=" + p[k]
	}
	return out
}

// Grid builds the cartesian product of the parameter values, in
// deterministic order (parameters sorted by name, values in given order).
func Grid(params map[string][]string) []Point {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	points := []Point{{}}
	for _, k := range keys {
		var next []Point
		for _, p := range points {
			for _, v := range params[k] {
				np := p.clone()
				np[k] = v
				next = append(next, np)
			}
		}
		points = next
	}
	return points
}

// Runner produces a trial for one parameter point.
type Runner func(p Point) (*perfdmf.Trial, error)

// Study names the experiment and owns the repository trials land in.
type Study struct {
	Repo       *perfdmf.Repository
	App        string
	Experiment string
}

// Run executes the runner over every point, stamps parameters into trial
// metadata (prefixed "param:"), renames each trial after its point, saves
// it, and returns the trials in grid order. The first error aborts the
// sweep.
func (s *Study) Run(points []Point, run Runner) ([]*perfdmf.Trial, error) {
	if s.Repo == nil {
		s.Repo = perfdmf.NewRepository()
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("study: no points to run")
	}
	var out []*perfdmf.Trial
	for _, pt := range points {
		t, err := run(pt)
		if err != nil {
			return out, fmt.Errorf("study: point %s: %w", pt.Name(), err)
		}
		t.App = s.App
		t.Experiment = s.Experiment
		t.Name = pt.Name()
		for k, v := range pt {
			t.Metadata["param:"+k] = v
		}
		if err := s.Repo.Save(t); err != nil {
			return out, fmt.Errorf("study: point %s: %w", pt.Name(), err)
		}
		out = append(out, t)
	}
	return out, nil
}

// SeriesPoint is one (x, y) pair of an extracted series.
type SeriesPoint struct {
	X     float64
	Label string // the grouping point's name (without the x parameter)
	Y     float64
}

// Series extracts, for each combination of the non-x parameters, the series
// of (xParam value → total runtime): the largest per-thread inclusive value
// of `metric` over all flat events, which is the top-level region's
// duration regardless of which thread hosts it. X values must parse as
// numbers. Results are grouped by Label and sorted by X.
func Series(trials []*perfdmf.Trial, xParam, metric string) (map[string][]SeriesPoint, error) {
	out := make(map[string][]SeriesPoint)
	for _, t := range trials {
		xs, ok := t.Metadata["param:"+xParam]
		if !ok {
			return nil, fmt.Errorf("study: trial %q lacks parameter %q", t.Name, xParam)
		}
		x, err := strconv.ParseFloat(xs, 64)
		if err != nil {
			return nil, fmt.Errorf("study: parameter %q=%q is not numeric", xParam, xs)
		}
		y := 0.0
		for _, e := range t.Events {
			if e.IsCallpath() {
				continue
			}
			for _, v := range e.Inclusive[metric] {
				if v > y {
					y = v
				}
			}
		}
		if y == 0 {
			return nil, fmt.Errorf("study: trial %q has no %q data", t.Name, metric)
		}
		label := groupLabel(t, xParam)
		out[label] = append(out[label], SeriesPoint{X: x, Label: label, Y: y})
	}
	for _, pts := range out {
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	}
	return out, nil
}

func groupLabel(t *perfdmf.Trial, exclude string) string {
	var keys []string
	for k := range t.Metadata {
		if len(k) > 6 && k[:6] == "param:" && k[6:] != exclude {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	label := ""
	for i, k := range keys {
		if i > 0 {
			label += ","
		}
		label += k[6:] + "=" + t.Metadata[k]
	}
	if label == "" {
		label = "all"
	}
	return label
}
