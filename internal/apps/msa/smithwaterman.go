// Package msa is the multiple sequence alignment case study (§III-A): the
// ClustalW-style pipeline whose first stage — the Smith-Waterman distance
// matrix — dominates runtime and parallelizes over sequence pairs with
// OpenMP. The package contains a real Smith-Waterman local alignment kernel
// (used by examples and to ground the cost model) and a workload model that
// runs the three ClustalW stages on the execution simulator under any
// OpenMP schedule, reproducing the load-imbalance behaviour of Fig. 4.
package msa

import "math/rand"

// Amino acid alphabet for generated protein sequences.
const alphabet = "ARNDCQEGHILKMFPSTWYV"

// GenerateSequences produces n random protein sequences whose lengths are
// uniform in [meanLen-jitter, meanLen+jitter], deterministically from seed.
func GenerateSequences(n, meanLen, jitter int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	seqs := make([][]byte, n)
	for i := range seqs {
		length := meanLen
		if jitter > 0 {
			length = meanLen - jitter + rng.Intn(2*jitter+1)
		}
		if length < 1 {
			length = 1
		}
		s := make([]byte, length)
		for j := range s {
			s[j] = alphabet[rng.Intn(len(alphabet))]
		}
		seqs[i] = s
	}
	return seqs
}

// ScoreParams are the affine-free Smith-Waterman scoring constants.
type ScoreParams struct {
	Match    int // score for a character match (> 0)
	Mismatch int // score for a mismatch (< 0)
	Gap      int // gap penalty (< 0)
}

// DefaultScore returns the classic +2/-1/-1 scoring.
func DefaultScore() ScoreParams { return ScoreParams{Match: 2, Mismatch: -1, Gap: -1} }

// Align computes the optimal Smith-Waterman local alignment score between a
// and b with linear gap penalties, using the standard O(len(a)*len(b))
// dynamic program with a two-row working set. It returns the best score and
// the number of DP cells computed (the work unit the cost model charges).
func Align(a, b []byte, p ScoreParams) (score int, cells int) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0
	}
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	best := 0
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			s := p.Mismatch
			if a[i-1] == b[j-1] {
				s = p.Match
			}
			v := prev[j-1] + s
			if up := prev[j] + p.Gap; up > v {
				v = up
			}
			if left := curr[j-1] + p.Gap; left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			curr[j] = v
			if v > best {
				best = v
			}
		}
		prev, curr = curr, prev
	}
	return best, len(a) * len(b)
}

// Distance converts an alignment score to the ClustalW-style fractional
// distance in [0,1]: one minus the score normalized by the self-alignment
// score of the shorter sequence.
func Distance(a, b []byte, p ScoreParams) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	score, _ := Align(a, b, p)
	short := len(a)
	if len(b) < short {
		short = len(b)
	}
	max := short * p.Match
	if max <= 0 {
		return 1
	}
	d := 1 - float64(score)/float64(max)
	if d < 0 {
		return 0
	}
	return d
}
