package msa

import (
	"fmt"
	"math"

	"perfknow/internal/machine"
	"perfknow/internal/perfdmf"
	"perfknow/internal/sim"
)

// Params configures one MSAP run.
type Params struct {
	Sequences int
	MeanLen   int
	LenJitter int // lengths uniform in [MeanLen-LenJitter, MeanLen+LenJitter]
	Seed      int64
	Threads   int
	Schedule  sim.Schedule
}

// DefaultParams is the 400-sequence problem of Fig. 4 sized for the given
// thread count and schedule.
func DefaultParams(threads int, sched sim.Schedule) Params {
	return Params{
		Sequences: 400,
		MeanLen:   450,
		LenJitter: 220,
		Seed:      42,
		Threads:   threads,
		Schedule:  sched,
	}
}

// Event names recorded by the workload.
const (
	EventMain     = "main"
	EventOuter    = "pairwise_outer" // the parallel distance-matrix loop
	EventInner    = "pairwise_inner" // one outer iteration's inner loop
	EventTree     = "guide_tree"
	EventProgress = "progressive_align"
)

// per-cell essential operation costs of the Smith-Waterman inner loop
// (three candidate scores, max-reduction, clamp, row-buffer traffic).
const (
	cellInt      = 8
	cellLoads    = 3
	cellStores   = 1
	cellBranches = 1
)

// Run executes the MSAP workload on a fresh machine and returns the trial.
func Run(cfg machine.Config, p Params) (*perfdmf.Trial, error) {
	if p.Sequences < 2 {
		return nil, fmt.Errorf("msa: need at least 2 sequences, got %d", p.Sequences)
	}
	if p.Threads < 1 {
		return nil, fmt.Errorf("msa: need at least 1 thread, got %d", p.Threads)
	}
	mach := machine.New(cfg)
	eng := sim.NewEngine(mach, sim.Options{Threads: p.Threads, CallpathDepth: 3})

	seqs := GenerateSequences(p.Sequences, p.MeanLen, p.LenJitter, p.Seed)
	lengths := make([]int64, len(seqs))
	var totalLen int64
	for i, s := range seqs {
		lengths[i] = int64(len(s))
		totalLen += int64(len(s))
	}
	// suffixLen[i] = sum of lengths of sequences after i: iteration i of the
	// outer loop aligns sequence i against all later sequences, so its DP
	// cell count is lengths[i] * suffixLen[i] — the triangular cost profile
	// behind the static-schedule imbalance.
	suffixLen := make([]int64, len(seqs)+1)
	for i := len(seqs) - 1; i >= 0; i-- {
		suffixLen[i] = suffixLen[i+1] + lengths[i]
	}

	// Sequence data is shared read-only; the DP row buffers are per-thread
	// and cache-resident.
	seqRegion := mach.AllocRegion("sequences", maxI64(totalLen, cfg.PageBytes))
	seqRegion.Place(0, seqRegion.Bytes, 0) // loaded by the master before the parallel stage
	rowBytes := int64(p.MeanLen+p.LenJitter+1) * 8

	master := eng.Master()
	master.Enter(EventMain)

	// Stage 1: distance matrix (parallel over outer iterations).
	eng.ParallelFor(EventOuter, p.Sequences, p.Schedule, func(t *sim.Thread, i int) {
		cells := uint64(lengths[i] * suffixLen[i+1])
		if cells == 0 {
			return
		}
		t.Enter(EventInner)
		t.Compute(sim.Kernel{
			IntOps:         cells * cellInt,
			Branches:       cells * cellBranches,
			MispredictRate: 0.04,
			ILP:            0.55,
			// The DP working set is the two-row buffer plus the pair of
			// sequences — cache resident, so stage 1 is compute bound and
			// its performance story is scheduling, not memory.
			Refs: [2]sim.MemRef{{
				Region: seqRegion,
				Off:    0,
				Len:    minI64(rowBytes+2*int64(p.MeanLen), seqRegion.Bytes),
				Loads:  cells * cellLoads,
				Stores: cells * cellStores,
				Reuse:  64,
			}},
		})
		t.Leave(EventInner)
	})

	// Stage 2: guide tree construction — serial O(N^2 log N) on small data.
	n := float64(p.Sequences)
	treeOps := uint64(n * n * math.Log2(n) * 6)
	master.Enter(EventTree)
	master.Compute(sim.Kernel{IntOps: treeOps, Branches: treeOps / 8, ILP: 0.45})
	master.Leave(EventTree)

	// Stage 3: progressive alignment along the tree — serial: N-1 profile
	// merges, each an O(meanLen^2) dynamic program. This is the Amdahl tail
	// that caps scaling efficiency (~93% at 16 threads on 400 sequences,
	// ~80% at 128 threads on 1000 sequences, per Fig. 4(b)): it grows
	// linearly in N while stage 1 grows quadratically.
	progCells := n * float64(p.MeanLen) * float64(p.MeanLen)
	master.Enter(EventProgress)
	master.Compute(sim.Kernel{
		IntOps:   uint64(progCells * 10),
		Branches: uint64(progCells),
		ILP:      0.55,
		Refs: [2]sim.MemRef{{
			Region: seqRegion, Off: 0, Len: minI64(rowBytes, seqRegion.Bytes),
			Loads: uint64(progCells * 3), Stores: uint64(progCells), Reuse: 64,
		}},
	})
	master.Leave(EventProgress)

	master.Leave(EventMain)

	trial, err := eng.Snapshot("MSAP", fmt.Sprintf("%d_sequences", p.Sequences),
		fmt.Sprintf("%d_%s", p.Threads, p.Schedule))
	if err != nil {
		return nil, err
	}
	trial.Metadata["application"] = "MSAP"
	trial.Metadata["stage1"] = "smith-waterman distance matrix"
	trial.Metadata["sequences"] = fmt.Sprintf("%d", p.Sequences)
	trial.Metadata["schedule"] = p.Schedule.String()
	trial.Metadata["seed"] = fmt.Sprintf("%d", p.Seed)
	return trial, nil
}

// EfficiencySweep runs the workload at each thread count and returns the
// relative efficiency of each run versus the single-thread baseline — the
// series behind Fig. 4(b).
func EfficiencySweep(cfg machine.Config, base Params, threadCounts []int) (map[int]float64, error) {
	out := make(map[int]float64, len(threadCounts))
	p1 := base
	p1.Threads = 1
	t1, err := Run(cfg, p1)
	if err != nil {
		return nil, err
	}
	base1 := mainTime(t1)
	if base1 <= 0 {
		return nil, fmt.Errorf("msa: single-thread baseline has no time")
	}
	for _, tc := range threadCounts {
		p := base
		p.Threads = tc
		tr, err := Run(cfg, p)
		if err != nil {
			return nil, err
		}
		tp := mainTime(tr)
		if tp <= 0 {
			return nil, fmt.Errorf("msa: %d-thread run has no time", tc)
		}
		out[tc] = base1 / (float64(tc) * tp)
	}
	return out, nil
}

func mainTime(t *perfdmf.Trial) float64 {
	e := t.Event(EventMain)
	if e == nil {
		return 0
	}
	return e.Inclusive[perfdmf.TimeMetric][0]
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
