package msa

import (
	"math"
	"testing"
	"testing/quick"

	"perfknow/internal/analysis"
	"perfknow/internal/machine"
	"perfknow/internal/perfdmf"
	"perfknow/internal/sim"
)

func TestAlignKnownCases(t *testing.T) {
	p := DefaultScore()
	// Identical sequences: score = len * match.
	s, cells := Align([]byte("ACDEFG"), []byte("ACDEFG"), p)
	if s != 12 {
		t.Fatalf("self alignment score = %d, want 12", s)
	}
	if cells != 36 {
		t.Fatalf("cells = %d, want 36", cells)
	}
	// Disjoint alphabets: local alignment floors at 0.
	s, _ = Align([]byte("AAAA"), []byte("CCCC"), p)
	if s != 0 {
		t.Fatalf("disjoint score = %d, want 0", s)
	}
	// A shared substring dominates.
	s, _ = Align([]byte("XXXACDEYYY"), []byte("ZZACDEWW"), p)
	if s < 8 {
		t.Fatalf("substring score = %d, want >= 8", s)
	}
	// Empty input.
	s, cells = Align(nil, []byte("A"), p)
	if s != 0 || cells != 0 {
		t.Fatal("empty input should score 0 over 0 cells")
	}
}

func TestAlignSymmetry(t *testing.T) {
	p := DefaultScore()
	seqs := GenerateSequences(6, 40, 15, 7)
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			sij, _ := Align(seqs[i], seqs[j], p)
			sji, _ := Align(seqs[j], seqs[i], p)
			if sij != sji {
				t.Fatalf("alignment not symmetric for pair (%d,%d): %d vs %d", i, j, sij, sji)
			}
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	p := DefaultScore()
	a := []byte("ACDEFGHIKL")
	if d := Distance(a, a, p); d != 0 {
		t.Fatalf("self distance = %g, want 0", d)
	}
	if d := Distance([]byte("AAAA"), []byte("CCCC"), p); d != 1 {
		t.Fatalf("disjoint distance = %g, want 1", d)
	}
	if d := Distance(nil, a, p); d != 1 {
		t.Fatalf("empty distance = %g", d)
	}
	f := func(seedA, seedB int64) bool {
		x := GenerateSequences(1, 30, 10, seedA)[0]
		y := GenerateSequences(1, 30, 10, seedB)[0]
		d := Distance(x, y, p)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateSequencesDeterministic(t *testing.T) {
	a := GenerateSequences(10, 100, 30, 5)
	b := GenerateSequences(10, 100, 30, 5)
	if len(a) != 10 {
		t.Fatalf("got %d sequences", len(a))
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatal("generation not deterministic")
		}
		if len(a[i]) < 70 || len(a[i]) > 130 {
			t.Fatalf("length %d outside jitter band", len(a[i]))
		}
	}
	c := GenerateSequences(10, 100, 30, 6)
	same := true
	for i := range a {
		if string(a[i]) != string(c[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
	// Zero jitter: exact lengths; tiny mean floors at 1.
	d := GenerateSequences(3, 5, 0, 1)
	for _, s := range d {
		if len(s) != 5 {
			t.Fatalf("zero jitter length %d", len(s))
		}
	}
	e := GenerateSequences(1, 1, 5, 1)
	if len(e[0]) < 1 {
		t.Fatal("length floor violated")
	}
}

func smallParams(threads int, sched sim.Schedule) Params {
	return Params{Sequences: 64, MeanLen: 120, LenJitter: 60, Seed: 42, Threads: threads, Schedule: sched}
}

func TestRunProducesValidTrial(t *testing.T) {
	tr, err := Run(machine.Altix(8, 2), smallParams(8, sim.Schedule{Kind: sim.DynamicSched, Chunk: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range []string{EventMain, EventOuter, EventInner, EventTree, EventProgress} {
		if tr.Event(ev) == nil {
			t.Fatalf("missing event %q", ev)
		}
	}
	// Inner loop runs on all threads under dynamic scheduling.
	inner := tr.Event(EventInner)
	for th := 0; th < 8; th++ {
		if inner.Inclusive[perfdmf.TimeMetric][th] <= 0 {
			t.Fatalf("thread %d idle in stage 1", th)
		}
	}
	// Stage 1 dominates the profile (the paper's ~90%-in-stage-1
	// observation).
	mainT := perfdmf.Mean(tr.Event(EventMain).Inclusive[perfdmf.TimeMetric])
	outerT := perfdmf.Mean(tr.Event(EventOuter).Inclusive[perfdmf.TimeMetric])
	if outerT/mainT < 0.85 {
		t.Fatalf("stage 1 fraction = %g, want > 0.85", outerT/mainT)
	}
	if tr.Metadata["schedule"] != "dynamic,1" {
		t.Fatalf("metadata: %v", tr.Metadata)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(machine.Altix(2, 2), Params{Sequences: 1, Threads: 1}); err == nil {
		t.Fatal("1 sequence accepted")
	}
	if _, err := Run(machine.Altix(2, 2), Params{Sequences: 10, Threads: 0}); err == nil {
		t.Fatal("0 threads accepted")
	}
}

func TestStaticScheduleImbalancedDynamicBalanced(t *testing.T) {
	cfg := machine.Altix(8, 2)
	static, err := Run(cfg, smallParams(16, sim.Schedule{Kind: sim.StaticSched}))
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := Run(cfg, smallParams(16, sim.Schedule{Kind: sim.DynamicSched, Chunk: 1}))
	if err != nil {
		t.Fatal(err)
	}

	ratio := func(tr *perfdmf.Trial) float64 {
		vals := tr.Event(EventInner).Exclusive[perfdmf.TimeMetric]
		return perfdmf.StdDev(vals) / perfdmf.Mean(vals)
	}
	rs, rd := ratio(static), ratio(dynamic)
	// The paper's rule threshold: static-even exceeds 0.25, dynamic,1 does not.
	if rs < 0.25 {
		t.Fatalf("static imbalance ratio = %g, want > 0.25", rs)
	}
	if rd > 0.25 {
		t.Fatalf("dynamic,1 imbalance ratio = %g, want < 0.25", rd)
	}
	// And dynamic is faster end to end.
	if mainTime(dynamic) >= mainTime(static) {
		t.Fatalf("dynamic (%g) not faster than static (%g)", mainTime(dynamic), mainTime(static))
	}
}

func TestInnerOuterAnticorrelation(t *testing.T) {
	// Under static scheduling, threads that spend less time in the inner
	// loop wait longer in the outer loop at the barrier: strong negative
	// correlation — the fourth condition of the load-imbalance rule.
	tr, err := Run(machine.Altix(8, 2), smallParams(16, sim.Schedule{Kind: sim.StaticSched}))
	if err != nil {
		t.Fatal(err)
	}
	inner := tr.Event(EventInner).Exclusive[perfdmf.TimeMetric]
	outer := tr.Event(EventOuter).Exclusive[perfdmf.TimeMetric]
	c := perfdmf.Correlation(inner, outer)
	if c > -0.9 {
		t.Fatalf("inner/outer correlation = %g, want < -0.9", c)
	}
	// Nesting is recorded via callpaths.
	if !analysis.IsNested(tr, EventOuter, EventInner) {
		t.Fatal("callpath nesting outer => inner not recorded")
	}
}

func TestEfficiencySweepShape(t *testing.T) {
	cfg := machine.Altix(8, 2)
	base := smallParams(0, sim.Schedule{Kind: sim.DynamicSched, Chunk: 1})
	eff, err := EfficiencySweep(cfg, base, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if eff[4] < 0.8 || eff[4] > 1.05 {
		t.Fatalf("4-thread dynamic efficiency = %g", eff[4])
	}
	if eff[16] > eff[4]+0.02 {
		t.Fatalf("efficiency should not rise with threads: %v", eff)
	}

	baseStatic := smallParams(0, sim.Schedule{Kind: sim.StaticSched})
	effS, err := EfficiencySweep(cfg, baseStatic, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	if effS[16] >= eff[16] {
		t.Fatalf("static (%g) should be less efficient than dynamic,1 (%g)", effS[16], eff[16])
	}
}

func TestChunkOneBeatsLargeChunks(t *testing.T) {
	// "small chunk sizes gave the best speedup. Larger chunk sizes tend to
	// change the scheduling behavior to be more like the static even
	// behavior."
	cfg := machine.Altix(8, 2)
	times := map[int]float64{}
	for _, chunk := range []int{1, 16} {
		tr, err := Run(cfg, smallParams(16, sim.Schedule{Kind: sim.DynamicSched, Chunk: chunk}))
		if err != nil {
			t.Fatal(err)
		}
		times[chunk] = mainTime(tr)
	}
	if times[1] >= times[16] {
		t.Fatalf("chunk 1 (%g) should beat chunk 16 (%g)", times[1], times[16])
	}
}

func TestCellCountMatchesModel(t *testing.T) {
	// The cost model charges lengths[i] * suffixLen[i+1] cells for outer
	// iteration i; the real kernel computes exactly len(a)*len(b) cells per
	// pair. Verify the totals agree on a small instance.
	seqs := GenerateSequences(8, 30, 10, 42)
	var realCells int
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			_, c := Align(seqs[i], seqs[j], DefaultScore())
			realCells += c
		}
	}
	var modelCells int64
	suffix := int64(0)
	for i := len(seqs) - 1; i >= 0; i-- {
		modelCells += int64(len(seqs[i])) * suffix
		suffix += int64(len(seqs[i]))
	}
	if int64(realCells) != modelCells {
		t.Fatalf("real cells %d != model cells %d", realCells, modelCells)
	}
	if math.Abs(float64(realCells)) == 0 {
		t.Fatal("no cells computed")
	}
}
