package genidlest

import (
	"testing"

	"perfknow/internal/machine"
	"perfknow/internal/openuh"
	"perfknow/internal/perfdmf"
)

func altix() machine.Config { return machine.Altix(16, 2) }

func run(t *testing.T, p Problem, mode Mode, threads int, opt bool) *perfdmf.Trial {
	t.Helper()
	c := DefaultConfig(p, mode, threads)
	c.Optimized = opt
	tr, err := Run(altix(), c)
	if err != nil {
		t.Fatalf("Run(%s %s %d opt=%v): %v", p.Name, mode, threads, opt, err)
	}
	return tr
}

// t0 is the main event's inclusive time on thread 0 in seconds.
func t0(tr *perfdmf.Trial, ev string) float64 {
	e := tr.Event(ev)
	if e == nil {
		return 0
	}
	return e.Inclusive[perfdmf.TimeMetric][0] / 1e6
}

func TestProblems(t *testing.T) {
	p45, p90 := Rib45(), Rib90()
	if per, total := p45.Cells(); total != 128*80*64 || per != total/8 {
		t.Fatalf("45rib cells: %d/%d", per, total)
	}
	if per, total := p90.Cells(); total != 128*128*128 || per != total/32 {
		t.Fatalf("90rib cells: %d/%d", per, total)
	}
	if p45.OnProcCopies != 30 || p90.OnProcCopies != 126 {
		t.Fatal("paper copy counts wrong")
	}
	if p45.FaceBytes() <= 0 {
		t.Fatal("face bytes")
	}
	if _, err := ProblemByName("45rib"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProblemByName("60rib"); err == nil {
		t.Fatal("unknown problem accepted")
	}
	if OpenMP.String() != "OpenMP" || MPI.String() != "MPI" {
		t.Fatal("mode names")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Problem: Rib45(), Threads: 0, Timesteps: 1, InnerIters: 1},
		{Problem: Rib45(), Threads: 3, Timesteps: 1, InnerIters: 1}, // 3 does not divide 8
		{Problem: Rib45(), Threads: 8, Timesteps: 0, InnerIters: 1},
		{Problem: Rib45(), Threads: 8, Timesteps: 1, InnerIters: 0},
	}
	for i, c := range bad {
		if _, err := Run(altix(), c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestTrialStructure(t *testing.T) {
	tr := run(t, Rib45(), OpenMP, 8, false)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range append(SolverEvents(), EventMain, EventInit, EventExchange, EventSendRecvKo) {
		if tr.Event(ev) == nil {
			t.Fatalf("missing event %q", ev)
		}
	}
	if tr.Metadata["problem"] != "45rib" || tr.Metadata["mode"] != "OpenMP" {
		t.Fatalf("metadata: %v", tr.Metadata)
	}
	// The optimized version has no serial mpi_send_recv_ko copies.
	opt := run(t, Rib45(), OpenMP, 8, true)
	if opt.Event(EventSendRecvKo) != nil {
		t.Fatal("optimized run should not execute mpi_send_recv_ko")
	}
}

func TestFirstTouchPlacementDiffersByMode(t *testing.T) {
	// Unoptimized OpenMP: sequential init places every page on node 0.
	cfgU := DefaultConfig(Rib45(), OpenMP, 8)
	mach := machine.New(altix())
	// Re-run initialization logic through Run and inspect via a private
	// machine is not possible (Run builds its own machine), so instead we
	// verify the observable consequence: remote accesses dominate in the
	// unoptimized run and not in the optimized one.
	_ = cfgU
	_ = mach
	unopt := run(t, Rib90(), OpenMP, 16, false)
	opt := run(t, Rib90(), OpenMP, 16, true)
	remoteRatio := func(tr *perfdmf.Trial) float64 {
		var rem, loc float64
		for _, ev := range SolverEvents() {
			e := tr.Event(ev)
			rem += perfdmf.Sum(e.Exclusive["REMOTE_MEMORY_ACCESSES"])
			loc += perfdmf.Sum(e.Exclusive["LOCAL_MEMORY_ACCESSES"])
		}
		if rem+loc == 0 {
			return 0
		}
		return rem / (rem + loc)
	}
	ru, ro := remoteRatio(unopt), remoteRatio(opt)
	if ru < 0.8 {
		t.Fatalf("unoptimized remote fraction = %g, want > 0.8 (all data on node 0)", ru)
	}
	if ro > 0.3 {
		t.Fatalf("optimized remote fraction = %g, want < 0.3 (first-touch distributed)", ro)
	}
}

func TestOpenMPvsMPIGap90rib(t *testing.T) {
	// Paper: unoptimized OpenMP lags MPI by 11.16x on 90rib; our model
	// should land in the same neighbourhood (say 7x-15x).
	mpi := run(t, Rib90(), MPI, 16, true)
	unopt := run(t, Rib90(), OpenMP, 16, false)
	opt := run(t, Rib90(), OpenMP, 16, true)
	gap := t0(unopt, EventMain) / t0(mpi, EventMain)
	if gap < 7 || gap > 15 {
		t.Fatalf("unoptimized gap = %.2fx, want in [7,15] (paper: 11.16)", gap)
	}
	// After optimization the difference becomes minimal (paper: ~15%).
	optGap := t0(opt, EventMain)/t0(mpi, EventMain) - 1
	if optGap < 0 || optGap > 0.25 {
		t.Fatalf("optimized gap = %+.1f%%, want within [0,25]%%", 100*optGap)
	}
}

func TestOpenMPvsMPIGap45rib(t *testing.T) {
	// Paper: 3.48x for 45rib on 8 processors; allow [2.5, 5].
	mpi := run(t, Rib45(), MPI, 8, true)
	unopt := run(t, Rib45(), OpenMP, 8, false)
	gap := t0(unopt, EventMain) / t0(mpi, EventMain)
	if gap < 2.5 || gap > 5 {
		t.Fatalf("45rib gap = %.2fx, want in [2.5,5] (paper: 3.48)", gap)
	}
}

func TestExchangeVarDominatesUnoptimizedRuntime(t *testing.T) {
	// Paper: exchange_var__ represented 31% of the unoptimized OpenMP
	// runtime and scaled very poorly.
	unopt := run(t, Rib90(), OpenMP, 16, false)
	frac := t0(unopt, EventExchange) / t0(unopt, EventMain)
	if frac < 0.2 || frac > 0.5 {
		t.Fatalf("exchange fraction = %.2f, want in [0.2,0.5] (paper: 0.31)", frac)
	}
	// The serial master-thread copies show up as barrier wait on workers:
	// worker exclusive time inside exchange is dominated by waiting.
	ex := unopt.Event(EventExchange)
	if ex.Exclusive["OMP_BARRIER_CYCLES"][15] <= 0 {
		t.Fatal("workers should wait inside exchange_var__")
	}
}

func TestUnoptimizedOpenMPDoesNotScale(t *testing.T) {
	// Fig. 5(b): the unoptimized OpenMP version does not scale at all,
	// while optimized OpenMP and MPI scale.
	u4 := run(t, Rib90(), OpenMP, 4, false)
	u16 := run(t, Rib90(), OpenMP, 16, false)
	su := t0(u4, EventMain) / t0(u16, EventMain) // ideal would be 4
	if su > 1.6 {
		t.Fatalf("unoptimized OpenMP speedup 4->16 threads = %.2f, want < 1.6 (flat)", su)
	}
	o4 := run(t, Rib90(), OpenMP, 4, true)
	o16 := run(t, Rib90(), OpenMP, 16, true)
	so := t0(o4, EventMain) / t0(o16, EventMain)
	if so < 3 {
		t.Fatalf("optimized OpenMP speedup 4->16 threads = %.2f, want near 4", so)
	}
	m4 := run(t, Rib90(), MPI, 4, true)
	m16 := run(t, Rib90(), MPI, 16, true)
	sm := t0(m4, EventMain) / t0(m16, EventMain)
	if sm < 3.3 {
		t.Fatalf("MPI speedup 4->16 ranks = %.2f, want near 4", sm)
	}
}

func TestSolverProceduresScalePoorlyUnoptimized(t *testing.T) {
	// Fig. 5(a): bicgstab, diff_coeff, matxvec, pc, pc_jac_glb do not scale
	// in the unoptimized OpenMP version (speedup far below ideal 16).
	u1 := run(t, Rib90(), OpenMP, 1, false)
	u16 := run(t, Rib90(), OpenMP, 16, false)
	for _, ev := range SolverEvents() {
		s := perfdmf.Mean(u1.Event(ev).Exclusive[perfdmf.TimeMetric]) /
			perfdmf.Mean(u16.Event(ev).Exclusive[perfdmf.TimeMetric])
		if s > 6 {
			t.Fatalf("%s speedup at 16 threads = %.2f, want << 16 (poor scaling)", ev, s)
		}
		if s < 1 {
			t.Fatalf("%s slowed down: %.2f", ev, s)
		}
	}
}

func TestStallCountersSupportJarpDecomposition(t *testing.T) {
	// §III-B: for the hot procedures, L1D + FP stalls account for >= 90% of
	// back end stalls, which is the condition under which the methodology
	// ignores the remaining stall sources.
	tr := run(t, Rib90(), OpenMP, 16, false)
	for _, ev := range SolverEvents() {
		e := tr.Event(ev)
		all := perfdmf.Sum(e.Exclusive["BACK_END_BUBBLE_ALL"])
		l1d := perfdmf.Sum(e.Exclusive["BE_L1D_FPU_BUBBLE_L1D"])
		fp := perfdmf.Sum(e.Exclusive["BE_L1D_FPU_BUBBLE_FPU"])
		if all == 0 {
			t.Fatalf("%s has no stalls", ev)
		}
		if (l1d+fp)/all < 0.9 {
			t.Fatalf("%s: L1D+FP stalls = %.1f%% of total, want >= 90%%", ev, 100*(l1d+fp)/all)
		}
	}
}

func TestOptLevelAffectsRuntime(t *testing.T) {
	c0 := DefaultConfig(Rib45(), MPI, 8)
	c0.OptLevel = openuh.O0
	c0.Timesteps, c0.InnerIters = 1, 2
	tr0, err := Run(altix(), c0)
	if err != nil {
		t.Fatal(err)
	}
	c2 := c0
	c2.OptLevel = openuh.O2
	tr2, err := Run(altix(), c2)
	if err != nil {
		t.Fatal(err)
	}
	if t0(tr2, EventMain) >= t0(tr0, EventMain) {
		t.Fatal("O2 not faster than O0")
	}
	i0 := perfdmf.Sum(tr0.Event(EventMain).Inclusive["INSTRUCTIONS_COMPLETED"])
	i2 := perfdmf.Sum(tr2.Event(EventMain).Inclusive["INSTRUCTIONS_COMPLETED"])
	if r := i2 / i0; r > 0.2 {
		t.Fatalf("O2/O0 instruction ratio = %.3f, want < 0.2 (Table I: 0.059)", r)
	}
}

func TestHybridMode(t *testing.T) {
	// Hybrid 4 ranks x 4 threads on 90rib: data local per unit, so it
	// should land near MPI at the same total unit count, far from the
	// unoptimized OpenMP disaster.
	hyb := DefaultConfig(Rib90(), Hybrid, 16)
	hyb.ThreadsPerRank = 4
	th, err := Run(altix(), hyb)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Validate(); err != nil {
		t.Fatal(err)
	}
	if th.Metadata["mode"] != "Hybrid" {
		t.Fatalf("metadata: %v", th.Metadata)
	}
	mpi := run(t, Rib90(), MPI, 16, true)
	unopt := run(t, Rib90(), OpenMP, 16, false)
	hT, mT, uT := t0(th, EventMain), t0(mpi, EventMain), t0(unopt, EventMain)
	if hT > 2*mT {
		t.Fatalf("hybrid (%gs) should be near MPI (%gs)", hT, mT)
	}
	if hT > uT/3 {
		t.Fatalf("hybrid (%gs) should be far faster than unoptimized OpenMP (%gs)", hT, uT)
	}
	// All 16 units took part in the solver.
	mx := th.Event(EventMatxvec)
	for u := 0; u < 16; u++ {
		if mx.Inclusive[perfdmf.TimeMetric][u] <= 0 {
			t.Fatalf("unit %d idle in matxvec", u)
		}
	}
	// Hybrid scales from 2x2 to 4x4.
	small := DefaultConfig(Rib90(), Hybrid, 4)
	small.ThreadsPerRank = 2
	ts, err := Run(altix(), small)
	if err != nil {
		t.Fatal(err)
	}
	if sp := t0(ts, EventMain) / hT; sp < 2.5 {
		t.Fatalf("hybrid 4->16 unit speedup = %.2f, want near 4", sp)
	}
}

func TestHybridValidation(t *testing.T) {
	c := DefaultConfig(Rib90(), Hybrid, 16)
	if _, err := Run(altix(), c); err == nil {
		t.Fatal("hybrid without ThreadsPerRank accepted")
	}
	c.ThreadsPerRank = 3 // does not divide 16
	if _, err := Run(altix(), c); err == nil {
		t.Fatal("non-dividing ThreadsPerRank accepted")
	}
}

func TestMoreThreadsThanBlocks(t *testing.T) {
	// 45rib has 8 blocks; 16 threads leave 8 threads idle but must work.
	tr := run(t, Rib45(), OpenMP, 16, true)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if t0(tr, EventMain) <= 0 {
		t.Fatal("run produced no time")
	}
}
