// Package genidlest is the fluid-dynamics case study (§III-B): a
// GenIDLEST-style incompressible Navier-Stokes solver on an overlapping
// multi-block structured mesh, runnable as MPI (one or more blocks per
// rank) or OpenMP (blocks workshared across threads), in the unoptimized
// form the paper diagnoses — sequential data initialization that first-touch
// places every page on node 0, and a boundary-update procedure
// (exchange_var / mpi_send_recv_ko) whose on-processor copies are serial on
// the master thread — and in the optimized form with parallel first-touch
// initialization and parallelized direct copies.
//
// The solver procedures carry the names the paper reports in Fig. 5(a):
// bicgstab, matxvec, diff_coeff, pc, pc_jac_glb, exchange_var,
// mpi_send_recv_ko.
package genidlest

import (
	"fmt"

	"perfknow/internal/machine"
	"perfknow/internal/openuh"
	"perfknow/internal/perfdmf"
	"perfknow/internal/sim"
)

// Mode selects the programming model.
type Mode int

// Programming models.
const (
	OpenMP Mode = iota
	MPI
	Hybrid // MPI across ranks, OpenMP threads within each rank
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case MPI:
		return "MPI"
	case Hybrid:
		return "Hybrid"
	}
	return "OpenMP"
}

// Problem describes one of the two test cases.
type Problem struct {
	Name          string
	NX, NY, NZ    int   // global grid
	Blocks        int   // computational blocks (split along z)
	OnProcCopies  int   // OpenMP on-processor boundary copies per exchange (paper's counts)
	ArraysPerCell int   // field arrays carried per cell
	FaceArrays    int   // arrays exchanged at ghost faces
	CellBytes     int64 // bytes per cell per array
}

// Rib45 is the 45-degree ribbed duct: 128x80x64 in 8 blocks of 128x80x8,
// with 30 on-processor copies in the OpenMP boundary update.
func Rib45() Problem {
	return Problem{Name: "45rib", NX: 128, NY: 80, NZ: 64, Blocks: 8,
		OnProcCopies: 30, ArraysPerCell: 12, FaceArrays: 2, CellBytes: 8}
}

// Rib90 is the 90-degree rib: 128x128x128 in 32 blocks of 128x128x4, with
// 126 on-processor copies in the OpenMP boundary update.
func Rib90() Problem {
	return Problem{Name: "90rib", NX: 128, NY: 128, NZ: 128, Blocks: 32,
		OnProcCopies: 126, ArraysPerCell: 12, FaceArrays: 2, CellBytes: 8}
}

// ProblemByName resolves "45rib" / "90rib".
func ProblemByName(name string) (Problem, error) {
	switch name {
	case "45rib":
		return Rib45(), nil
	case "90rib":
		return Rib90(), nil
	}
	return Problem{}, fmt.Errorf("genidlest: unknown problem %q", name)
}

// Cells returns cells per block and total.
func (p Problem) Cells() (perBlock, total int64) {
	total = int64(p.NX) * int64(p.NY) * int64(p.NZ)
	return total / int64(p.Blocks), total
}

// FaceBytes is the ghost-face payload exchanged per boundary.
func (p Problem) FaceBytes() int64 {
	return int64(p.NX) * int64(p.NY) * p.CellBytes * int64(p.FaceArrays)
}

// Config selects a run.
type Config struct {
	Problem   Problem
	Mode      Mode
	Optimized bool // shorthand: enables both fixes below

	// The two fixes of §III-B, separable for ablation studies: FixInit
	// parallelizes the initialization loops (first-touch distributes
	// pages); FixExchange parallelizes the boundary-update copies and
	// eliminates the intermediate buffers.
	FixInit     bool
	FixExchange bool

	Threads    int // total processing units; must divide Blocks or vice versa
	Timesteps  int
	InnerIters int // solver sweeps per timestep
	OptLevel   openuh.OptLevel

	// ThreadsPerRank applies to Hybrid mode only: Threads is split into
	// Threads/ThreadsPerRank MPI ranks of ThreadsPerRank OpenMP threads.
	ThreadsPerRank int
}

// fixInit reports whether the initialization fix is active.
func (c Config) fixInit() bool { return c.Optimized || c.FixInit }

// fixExchange reports whether the boundary-update fix is active.
func (c Config) fixExchange() bool { return c.Optimized || c.FixExchange }

// DefaultConfig returns a run of the given problem sized like the paper's.
func DefaultConfig(p Problem, mode Mode, threads int) Config {
	return Config{
		Problem:    p,
		Mode:       mode,
		Threads:    threads,
		Timesteps:  3,
		InnerIters: 10,
		OptLevel:   openuh.O2,
	}
}

// Event names (the paper's procedure names).
const (
	EventMain       = "main"
	EventInit       = "initialization"
	EventDiffCoeff  = "diff_coeff"
	EventBicgstab   = "bicgstab"
	EventMatxvec    = "matxvec"
	EventPC         = "pc"
	EventPCJacGlb   = "pc_jac_glb"
	EventExchange   = "exchange_var__"
	EventSendRecvKo = "mpi_send_recv_ko"
)

// SolverEvents lists the computation procedures of Fig. 5(a).
func SolverEvents() []string {
	return []string{EventBicgstab, EventDiffCoeff, EventMatxvec, EventPC, EventPCJacGlb}
}

// procedure work per cell (essential ops) — a 7-point stencil solver mix.
// reuse counts line re-references from spatial locality (8 doubles per line)
// plus the stencil's short-range temporal reuse; arrays is how many of the
// block's field arrays the procedure streams (its working-set share).
type procWork struct {
	fp, ld, st uint64
	reuse      float64
	dep        float64
	arrays     int
}

var solverProcs = map[string]procWork{
	EventDiffCoeff: {fp: 12, ld: 8, st: 2, reuse: 10, dep: 0.25, arrays: 4},
	EventMatxvec:   {fp: 14, ld: 9, st: 1, reuse: 14, dep: 0.30, arrays: 3},
	EventPC:        {fp: 8, ld: 5, st: 1, reuse: 12, dep: 0.35, arrays: 3},
	EventPCJacGlb:  {fp: 4, ld: 3, st: 1, reuse: 10, dep: 0.30, arrays: 2},
	EventBicgstab:  {fp: 10, ld: 6, st: 3, reuse: 12, dep: 0.40, arrays: 4},
}

// run state shared by both modes.
type runState struct {
	cfg    Config
	mach   *machine.Machine
	eng    *sim.Engine
	cg     openuh.CodeGen
	fields *machine.Region // all field arrays, block-major
	buf    *machine.Region // intermediate exchange buffers
	blockB int64           // bytes per block (all arrays)
}

// Run executes the configured workload on a fresh machine built from cfg.
func Run(mcfg machine.Config, cfg Config) (*perfdmf.Trial, error) {
	if cfg.Threads < 1 {
		return nil, fmt.Errorf("genidlest: need at least 1 thread, got %d", cfg.Threads)
	}
	if cfg.Problem.Blocks%cfg.Threads != 0 && cfg.Threads%cfg.Problem.Blocks != 0 {
		return nil, fmt.Errorf("genidlest: %d threads do not divide %d blocks",
			cfg.Threads, cfg.Problem.Blocks)
	}
	if cfg.Timesteps < 1 || cfg.InnerIters < 1 {
		return nil, fmt.Errorf("genidlest: timesteps and inner iterations must be positive")
	}
	if cfg.Mode == Hybrid {
		if cfg.ThreadsPerRank < 1 || cfg.Threads%cfg.ThreadsPerRank != 0 {
			return nil, fmt.Errorf("genidlest: hybrid mode needs ThreadsPerRank dividing %d threads, got %d",
				cfg.Threads, cfg.ThreadsPerRank)
		}
	}

	st := &runState{cfg: cfg, mach: machine.New(mcfg)}
	st.eng = sim.NewEngine(st.mach, sim.Options{Threads: cfg.Threads, CallpathDepth: 3})
	prog := openuh.NewProgram("genidlest")
	prog.AddProc(&openuh.Proc{Name: "main"}) // satisfy program validation
	st.cg = openuh.Optimize(prog, cfg.OptLevel, nil)

	perBlock, total := cfg.Problem.Cells()
	st.blockB = perBlock * cfg.Problem.CellBytes * int64(cfg.Problem.ArraysPerCell)
	st.fields = st.mach.AllocRegion("fields", total*cfg.Problem.CellBytes*int64(cfg.Problem.ArraysPerCell))
	st.buf = st.mach.AllocRegion("exchange_buffers", maxI64(cfg.Problem.FaceBytes()*2, mcfg.PageBytes))

	master := st.eng.Master()
	master.Enter(EventMain)
	st.initialize()
	for ts := 0; ts < cfg.Timesteps; ts++ {
		st.timestep()
	}
	master.Leave(EventMain)

	trial, err := st.eng.Snapshot("Fluid Dynamic", "rib "+cfg.Problem.Name,
		fmt.Sprintf("%s_%d_%s", cfg.Mode, cfg.Threads, optLabel(cfg.Optimized)))
	if err != nil {
		return nil, err
	}
	trial.Metadata["application"] = "GenIDLEST"
	trial.Metadata["problem"] = cfg.Problem.Name
	trial.Metadata["mode"] = cfg.Mode.String()
	trial.Metadata["optimized"] = fmt.Sprintf("%v", cfg.Optimized)
	trial.Metadata["blocks"] = fmt.Sprintf("%d", cfg.Problem.Blocks)
	trial.Metadata["compiler:opt_level"] = cfg.OptLevel.String()
	return trial, nil
}

func optLabel(optimized bool) string {
	if optimized {
		return "opt"
	}
	return "unopt"
}

// blocksOf returns the block index range owned by a thread/rank.
func (st *runState) blocksOf(unit int) (lo, hi int) {
	blocks := st.cfg.Problem.Blocks
	per := blocks / st.cfg.Threads
	if per < 1 {
		// More threads than blocks: the first `blocks` units get one each.
		if unit < blocks {
			return unit, unit + 1
		}
		return 0, 0
	}
	return unit * per, (unit + 1) * per
}

// contenders estimates how many threads concurrently hit the home node of
// the fields region: with node-0 placement every thread contends; with
// distributed placement only the node's own CPUs do.
func (st *runState) contenders() int {
	if st.cfg.Mode == OpenMP && !st.cfg.fixInit() {
		return st.cfg.Threads
	}
	c := st.mach.Config().CPUsPerNode
	if st.cfg.Threads < c {
		return st.cfg.Threads
	}
	return c
}

// initialize models the data initialization. Unoptimized OpenMP initializes
// sequentially on the master (placing every page on node 0); the optimized
// version parallelizes the initialization loops so first touch distributes
// pages; MPI ranks each touch their own blocks.
func (st *runState) initialize() {
	perBlock, _ := st.cfg.Problem.Cells()
	cellsPerBlock := uint64(perBlock)
	initWork := func(t *sim.Thread, block int) {
		off := int64(block) * st.blockB
		t.Compute(sim.Kernel{
			IntOps: cellsPerBlock * 2,
			ILP:    0.8,
			Refs: [2]sim.MemRef{{
				Region: st.fields, Off: off, Len: st.blockB,
				Stores: cellsPerBlock * uint64(st.cfg.Problem.ArraysPerCell),
				Reuse:  0, FirstTouch: true,
			}},
		})
	}
	switch {
	case st.cfg.Mode == MPI || st.cfg.Mode == Hybrid:
		// Each processing unit touches its own blocks: data is local by
		// construction, as in the MPI port (hybrid ranks inherit this).
		st.eng.SPMD(func(r *sim.Thread, rank int) {
			r.Enter(EventInit)
			lo, hi := st.blocksOf(rank)
			for b := lo; b < hi; b++ {
				initWork(r, b)
			}
			r.Leave(EventInit)
		})
		st.eng.MPIBarrier()
	case st.cfg.fixInit():
		st.eng.ParallelFor(EventInit, st.cfg.Problem.Blocks, sim.Schedule{Kind: sim.StaticSched},
			func(t *sim.Thread, b int) { initWork(t, b) })
	default:
		// Sequential initialization on the master: the locality defect.
		master := st.eng.Master()
		master.Enter(EventInit)
		for b := 0; b < st.cfg.Problem.Blocks; b++ {
			initWork(master, b)
		}
		master.Leave(EventInit)
	}
}

// solverKernel builds the kernel for one procedure over one block.
func (st *runState) solverKernel(name string, block int) sim.Kernel {
	w := solverProcs[name]
	perBlock, _ := st.cfg.Problem.Cells()
	cells := uint64(perBlock)
	work := openuh.Work{
		FP:       w.fp * cells,
		Int:      cells * 2,
		Loads:    w.ld * cells,
		Stores:   w.st * cells,
		Branches: cells / 8,
		DepChain: w.dep,
	}
	k := st.cg.Expand(work, nil)
	// Refs[0] carries the essential field-array traffic; point it at this
	// block's slice of the fields region, sized to the arrays the procedure
	// actually streams. Refs[1] (spill traffic) stays stack-resident.
	k.Refs[0].Region = st.fields
	k.Refs[0].Off = int64(block) * st.blockB
	k.Refs[0].Len = st.blockB * int64(w.arrays) / int64(st.cfg.Problem.ArraysPerCell)
	k.Refs[0].Reuse = w.reuse * st.cg.ReuseBoost
	k.Refs[0].Contenders = st.contenders()
	// The solver re-streams the same arrays every sweep; a share of the
	// footprint survives in L3 between sweeps when it fits.
	k.Refs[0].Hot = 0.35
	return k
}

// rankTeams returns the per-rank thread groups of a hybrid run.
func (st *runState) rankTeams() []*sim.Team {
	tpr := st.cfg.ThreadsPerRank
	ranks := st.cfg.Threads / tpr
	teams := make([]*sim.Team, ranks)
	for r := 0; r < ranks; r++ {
		ids := make([]int, tpr)
		for i := range ids {
			ids[i] = r*tpr + i
		}
		teams[r] = st.eng.TeamOf(ids...)
	}
	return teams
}

// computePhase runs one named solver procedure over all blocks, workshared
// by mode.
func (st *runState) computePhase(name string) {
	if st.cfg.Mode == MPI {
		st.eng.SPMD(func(r *sim.Thread, rank int) {
			r.Enter(name)
			lo, hi := st.blocksOf(rank)
			for b := lo; b < hi; b++ {
				r.Compute(st.solverKernel(name, b))
			}
			r.Leave(name)
		})
		return
	}
	if st.cfg.Mode == Hybrid {
		// Every unit computes its own blocks, then the rank's OpenMP team
		// joins at an intra-process barrier (inside the phase event).
		st.eng.SPMD(func(u *sim.Thread, unit int) {
			u.Enter(name)
			lo, hi := st.blocksOf(unit)
			for b := lo; b < hi; b++ {
				u.Compute(st.solverKernel(name, b))
			}
		})
		for _, team := range st.rankTeams() {
			team.Barrier()
		}
		st.eng.SPMD(func(u *sim.Thread, unit int) { u.Leave(name) })
		return
	}
	st.eng.ParallelRegion(name, func(tm *sim.Team) {
		tm.Each(func(t *sim.Thread) {
			lo, hi := st.blocksOf(t.ID)
			for b := lo; b < hi; b++ {
				t.Compute(st.solverKernel(name, b))
			}
		})
	})
}

// exchange models the ghost-cell boundary update.
func (st *runState) exchange() {
	faceB := st.cfg.Problem.FaceBytes()
	switch st.cfg.Mode {
	case MPI:
		// Each rank posts 2 sends and 2 receives (z-neighbors, periodic in
		// the flow direction) and performs 2 on-processor copies.
		st.eng.SPMD(func(r *sim.Thread, rank int) {
			r.Enter(EventExchange)
			for c := 0; c < 2; c++ {
				r.Copy(st.fields, st.fields,
					int64(rank)*st.blockB, int64(rank)*st.blockB, faceB)
			}
		})
		var msgs []sim.Message
		n := st.cfg.Threads
		for rank := 0; rank < n; rank++ {
			msgs = append(msgs,
				sim.Message{From: rank, To: (rank + 1) % n, Bytes: faceB},
				sim.Message{From: rank, To: (rank + n - 1) % n, Bytes: faceB},
			)
		}
		st.eng.Exchange(msgs)
		st.eng.SPMD(func(r *sim.Thread, rank int) { r.Leave(EventExchange) })
	case Hybrid:
		// Intra-rank boundaries are shared-memory direct copies workshared
		// across the rank's OpenMP threads; inter-rank faces travel as MPI
		// messages between the ranks' master threads.
		tpr := st.cfg.ThreadsPerRank
		ranks := st.cfg.Threads / tpr
		st.eng.SPMD(func(u *sim.Thread, unit int) { u.Enter(EventExchange) })
		intraTotal := st.cfg.Problem.OnProcCopies * maxInt(st.cfg.Problem.Blocks-ranks, 0) / st.cfg.Problem.Blocks
		perRank := intraTotal / maxInt(ranks, 1)
		for r, team := range st.rankTeams() {
			base := r * (st.cfg.Problem.Blocks / maxInt(ranks, 1))
			team.For(perRank, sim.Schedule{Kind: sim.StaticSched}, func(t *sim.Thread, c int) {
				src := (base + c) % st.cfg.Problem.Blocks
				dst := (src + 1) % st.cfg.Problem.Blocks
				t.Copy(st.fields, st.fields,
					int64(dst)*st.blockB, int64(src)*st.blockB, faceB)
			})
			team.Barrier()
		}
		var msgs []sim.Message
		for r := 0; r < ranks; r++ {
			master := r * tpr
			next := ((r + 1) % ranks) * tpr
			prev := ((r + ranks - 1) % ranks) * tpr
			msgs = append(msgs,
				sim.Message{From: master, To: next, Bytes: faceB},
				sim.Message{From: master, To: prev, Bytes: faceB},
			)
		}
		if ranks > 1 {
			st.eng.Exchange(msgs)
		}
		st.eng.SPMD(func(u *sim.Thread, unit int) { u.Leave(EventExchange) })
	case OpenMP:
		copies := st.cfg.Problem.OnProcCopies
		if st.cfg.fixExchange() {
			// Optimized: direct copies parallelized over blocks; the two
			// intermediate buffer steps are eliminated.
			st.eng.ParallelRegion(EventExchange, func(tm *sim.Team) {
				tm.For(copies, sim.Schedule{Kind: sim.StaticSched}, func(t *sim.Thread, c int) {
					// Each direct copy writes into the neighbouring block's
					// ghost layer, whose pages live on the neighbour's node —
					// the residual NUMA traffic that keeps the optimized
					// OpenMP version ~15% behind MPI.
					src := c % st.cfg.Problem.Blocks
					dst := (src + 1) % st.cfg.Problem.Blocks
					t.Copy(st.fields, st.fields,
						int64(dst)*st.blockB, int64(src)*st.blockB, faceB)
				})
			})
			return
		}
		// Unoptimized: all copies in shared memory initiated by the master
		// thread, through intermediate send and receive buffers (three
		// buffer traversals per boundary), inside mpi_send_recv_ko.
		st.eng.ParallelRegion(EventExchange, func(tm *sim.Team) {
			tm.MasterOnly(func(t *sim.Thread) {
				t.Enter(EventSendRecvKo)
				for c := 0; c < copies; c++ {
					block := c % st.cfg.Problem.Blocks
					src := int64(block) * st.blockB
					// Fill send buffer (cold field data), shuffle to the
					// receive buffer (both L3-hot), copy to the destination.
					t.CopyHot(st.buf, st.fields, 0, src, faceB, 0, 1)
					t.CopyHot(st.buf, st.buf, faceB, 0, faceB, 1, 1)
					t.CopyHot(st.fields, st.buf, src, faceB, faceB, 1, 0)
				}
				t.Leave(EventSendRecvKo)
			})
		})
	}
}

// timestep runs one outer iteration: diffusion coefficients, then the
// BiCGSTAB solver sweeps with preconditioning, the ghost-cell boundary
// update after every sweep, and the solver's dot-product reductions.
func (st *runState) timestep() {
	st.computePhase(EventDiffCoeff)
	st.exchange()
	for it := 0; it < st.cfg.InnerIters; it++ {
		st.computePhase(EventMatxvec)
		st.computePhase(EventPC)
		st.computePhase(EventPCJacGlb)
		st.computePhase(EventBicgstab)
		st.exchange()
		if st.cfg.Mode == MPI || st.cfg.Mode == Hybrid {
			st.eng.AllReduce(16) // two dot products per sweep
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
