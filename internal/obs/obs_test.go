package obs

import (
	"context"
	"errors"
	"net/http"
	"testing"
)

func TestSpanTreeAndFinalize(t *testing.T) {
	tr := NewTracer()
	tr.Service = "test"
	ctx := ContextWithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "root", "kind", "cli")
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.SetError(errors.New("boom"))
	grand.End()
	child.End()

	if tr.Len() != 0 {
		t.Fatalf("trace finalized before root ended: %d", tr.Len())
	}
	root.End()
	if tr.Len() != 1 {
		t.Fatalf("want 1 completed trace, got %d", tr.Len())
	}

	traces := tr.Traces()
	spans := traces[0].Spans
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].ParentID != "" {
		t.Errorf("root should have no parent, got %q", byName["root"].ParentID)
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Errorf("child parent = %q, want root %q", byName["child"].ParentID, byName["root"].SpanID)
	}
	if byName["grandchild"].ParentID != byName["child"].SpanID {
		t.Errorf("grandchild parent = %q, want child %q", byName["grandchild"].ParentID, byName["child"].SpanID)
	}
	for _, s := range spans {
		if s.TraceID != root.TraceID() {
			t.Errorf("span %s trace id %q != root %q", s.Name, s.TraceID, root.TraceID())
		}
		if s.Service != "test" {
			t.Errorf("span %s service = %q, want test", s.Name, s.Service)
		}
	}
	if byName["grandchild"].Error != "boom" {
		t.Errorf("grandchild error = %q", byName["grandchild"].Error)
	}
	if byName["root"].Attrs["kind"] != "cli" {
		t.Errorf("root attrs = %v", byName["root"].Attrs)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "untraced")
	if sp != nil {
		t.Fatal("expected nil span without a tracer")
	}
	sp.SetAttr("k", "v")
	sp.SetError(errors.New("x"))
	sp.End()
	if sp.TraceID() != "" || sp.SpanID() != "" {
		t.Error("nil span ids should be empty")
	}
	h := http.Header{}
	Inject(h, sp)
	if h.Get(HeaderTraceparent) != "" {
		t.Error("nil span must not inject")
	}
	if got := SpanFromContext(ctx); got != nil {
		t.Error("untraced ctx should carry no span")
	}
}

func TestRemoteParentContinuesTrace(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	ctx = ContextWithRemoteParent(ctx, "0123456789abcdef0123456789abcdef", "0123456789abcdef")
	ctx, sp := StartSpan(ctx, "server")
	_, inner := StartSpan(ctx, "repo.get")
	inner.End()
	sp.End()

	got, ok := tr.Trace("0123456789abcdef0123456789abcdef")
	if !ok {
		t.Fatal("trace under remote id not finalized")
	}
	var server SpanData
	for _, s := range got.Spans {
		if s.Name == "server" {
			server = s
		}
	}
	if server.ParentID != "0123456789abcdef" {
		t.Errorf("server parent = %q, want remote span id", server.ParentID)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "client")
	h := http.Header{}
	Inject(h, sp)
	traceID, spanID, ok := Extract(h)
	if !ok {
		t.Fatalf("extract failed on %q", h.Get(HeaderTraceparent))
	}
	if traceID != sp.TraceID() || spanID != sp.SpanID() {
		t.Errorf("round trip (%q,%q) != (%q,%q)", traceID, spanID, sp.TraceID(), sp.SpanID())
	}
	sp.End()
}

func TestParseTraceparentRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"00-short-0123456789abcdef-01",
		"99-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
		"00-0123456789abcdef0123456789abcdeg-0123456789abcdef-01", // non-hex
		"00-00000000000000000000000000000000-0123456789abcdef-01", // all-zero trace
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef",    // 3 parts
	}
	for _, v := range bad {
		if _, _, ok := ParseTraceparent(v); ok {
			t.Errorf("accepted malformed traceparent %q", v)
		}
	}
}

func TestRingBufferBounds(t *testing.T) {
	tr := NewTracer()
	tr.SetLimits(3, 2)
	ctx := ContextWithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		c, root := StartSpan(ctx, "root")
		for j := 0; j < 4; j++ {
			_, sp := StartSpan(c, "child")
			sp.End()
		}
		root.End()
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("ring kept %d traces, want 3", got)
	}
	for _, trc := range tr.Traces() {
		if len(trc.Spans) > 2 {
			t.Errorf("trace %s holds %d spans, cap is 2", trc.TraceID, len(trc.Spans))
		}
	}
}

func TestMergeRemoteSpans(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "local")
	id := sp.TraceID()
	sp.End()

	tr.Merge(Trace{TraceID: id, Spans: []SpanData{{TraceID: id, SpanID: "aaaa", Name: "remote"}}})
	got, ok := tr.Trace(id)
	if !ok || len(got.Spans) != 2 {
		t.Fatalf("merge: got ok=%v spans=%d, want 2", ok, len(got.Spans))
	}
}

func TestEvents(t *testing.T) {
	tr := NewTracer()
	var events []Event
	tr.OnEvent(func(ev Event) { events = append(events, ev) })

	ctx := ContextWithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "fails")
	sp.SetError(errors.New("kaput"))
	sp.End()
	tr.Emit(Event{Name: "custom", Attrs: map[string]string{"k": "v"}})

	if len(events) != 2 {
		t.Fatalf("want 2 events, got %d", len(events))
	}
	if events[0].Name != "fails" || events[0].Err == nil {
		t.Errorf("span-error event = %+v", events[0])
	}
	if events[1].Name != "custom" || events[1].Time.IsZero() {
		t.Errorf("emitted event = %+v", events[1])
	}
}

func TestSummaries(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	c, root := StartSpan(ctx, "run")
	_, bad := StartSpan(c, "step")
	bad.SetError(errors.New("x"))
	bad.End()
	root.End()

	sums := tr.Summaries()
	if len(sums) != 1 {
		t.Fatalf("want 1 summary, got %d", len(sums))
	}
	s := sums[0]
	if s.Root != "run" || s.Spans != 2 || s.Errors != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.StartUnixNano == 0 || s.DurationMicros <= 0 {
		t.Errorf("summary timing = %+v", s)
	}
}
