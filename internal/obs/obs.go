// Package obs is the system's self-observability layer: a stdlib-only
// tracing and metrics substrate threaded through the interpreter, the
// analysis operations, the rule engine, the profile repository, the
// networked client and the perfdmfd daemon.
//
// The design premise mirrors the source paper's: performance knowledge
// should be captured as structured, machine-readable data — including the
// performance of the analysis system itself. A diagnosis run therefore
// produces a trace: a tree of spans covering client requests, HTTP
// transport, server-side handlers, script statements, rule firings,
// analysis operations and repository I/O, stitched across process
// boundaries with Traceparent-style headers. Completed traces are held in
// a bounded ring buffer and can be re-ingested as profiles
// (TraceTrial) so the rules engine can diagnose the tool with its own
// knowledge base.
//
// Tracing is context-driven and zero-configuration at call sites:
//
//	ctx = obs.ContextWithTracer(ctx, tracer)   // once, at the entry point
//	ctx, sp := obs.StartSpan(ctx, "analysis.kmeans", "metric", m)
//	defer sp.End()
//
// When the context carries no tracer, StartSpan returns a nil span whose
// methods are all no-ops, so instrumented code pays one pointer check on
// the cold path and nothing else.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// SpanData is the completed, serializable form of a span — the unit stored
// in traces and served by GET /api/v1/traces. Field names and units are
// part of the versioned telemetry schema; do not rename casually.
type SpanData struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// Service identifies the process that produced the span (e.g.
	// "perfexplorer", "perfdmfd"), so merged cross-process traces stay
	// attributable.
	Service string `json:"service,omitempty"`
	// StartUnixNano is the span's start time (UnixNano).
	StartUnixNano int64 `json:"start_unix_ns"`
	// DurationMicros is the span's wall-clock duration in microseconds —
	// the same unit as the TIME metric in profiles, so traces re-ingest as
	// trials without conversion.
	DurationMicros float64           `json:"duration_us"`
	Attrs          map[string]string `json:"attrs,omitempty"`
	Error          string            `json:"error,omitempty"`
}

// Trace is one completed trace: every recorded span sharing a trace id.
type Trace struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanData `json:"spans"`
}

// TraceSummary is the listing form of a trace (GET /api/v1/traces).
type TraceSummary struct {
	TraceID        string  `json:"trace_id"`
	Root           string  `json:"root"`
	Spans          int     `json:"spans"`
	Errors         int     `json:"errors"`
	StartUnixNano  int64   `json:"start_unix_ns"`
	DurationMicros float64 `json:"duration_us"`
}

// Event is an out-of-band observation emitted by instrumented components —
// for example a listing call that swallowed a transport error, or a span
// that ended with an error. Register an observer with Tracer.OnEvent.
type Event struct {
	Time    time.Time
	Name    string
	TraceID string
	SpanID  string
	Err     error
	Attrs   map[string]string
}

// Defaults for the trace ring buffer.
const (
	DefaultMaxTraces        = 128
	DefaultMaxSpansPerTrace = 512
)

// Tracer collects spans into completed traces. It is safe for concurrent
// use. A trace is finalized when its locally rooted span (the first span
// of the trace started in this process without a local parent) ends; the
// completed trace then becomes visible to Traces, Trace and Summaries.
// Completed traces live in a bounded ring buffer — the oldest trace is
// evicted once MaxTraces is exceeded — and each trace holds at most
// MaxSpans spans (later spans are counted but dropped).
type Tracer struct {
	// Service stamps every span produced by this tracer; set it once,
	// before spans are started.
	Service string

	mu      sync.Mutex
	active  map[string]*traceBuf
	order   []string // active trace ids, oldest first
	done    []*Trace // completed traces, oldest first
	dropped map[string]int
	hooks   []func(Event)

	maxTraces int
	maxSpans  int
}

type traceBuf struct {
	spans []SpanData
	drops int
}

// NewTracer returns a tracer with the default ring-buffer bounds.
func NewTracer() *Tracer {
	return &Tracer{
		active:    make(map[string]*traceBuf),
		dropped:   make(map[string]int),
		maxTraces: DefaultMaxTraces,
		maxSpans:  DefaultMaxSpansPerTrace,
	}
}

// SetLimits overrides the ring-buffer bounds (values <= 0 keep the
// defaults). Call before tracing starts.
func (t *Tracer) SetLimits(maxTraces, maxSpansPerTrace int) {
	if maxTraces > 0 {
		t.maxTraces = maxTraces
	}
	if maxSpansPerTrace > 0 {
		t.maxSpans = maxSpansPerTrace
	}
}

// OnEvent registers an observer for events (span errors and explicit
// Emit calls). Observers run synchronously on the emitting goroutine and
// must be fast and non-blocking.
func (t *Tracer) OnEvent(fn func(Event)) {
	t.mu.Lock()
	t.hooks = append(t.hooks, fn)
	t.mu.Unlock()
}

// Emit publishes an event to every observer registered with OnEvent.
func (t *Tracer) Emit(ev Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	t.mu.Lock()
	hooks := make([]func(Event), len(t.hooks))
	copy(hooks, t.hooks)
	t.mu.Unlock()
	for _, fn := range hooks {
		fn(ev)
	}
}

// record buffers one finished span and finalizes the trace when the local
// root ends.
func (t *Tracer) record(sd SpanData, localRoot bool) {
	t.mu.Lock()
	buf := t.active[sd.TraceID]
	if buf == nil {
		buf = &traceBuf{}
		t.active[sd.TraceID] = buf
		t.order = append(t.order, sd.TraceID)
		// Bound the number of in-flight trace buckets: evict the oldest
		// unfinalized trace wholesale rather than grow without limit.
		if len(t.order) > t.maxTraces {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.active, evict)
		}
	}
	if len(buf.spans) < t.maxSpans {
		buf.spans = append(buf.spans, sd)
	} else {
		buf.drops++
	}
	if localRoot {
		t.finalizeLocked(sd.TraceID)
	}
	t.mu.Unlock()
}

// finalizeLocked moves the active bucket for id into the completed ring,
// merging with an already completed trace of the same id (a later request
// in the same distributed trace).
func (t *Tracer) finalizeLocked(id string) {
	buf := t.active[id]
	if buf == nil {
		return
	}
	delete(t.active, id)
	for i, o := range t.order {
		if o == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	if buf.drops > 0 {
		t.dropped[id] += buf.drops
	}
	for _, tr := range t.done {
		if tr.TraceID == id {
			tr.Spans = append(tr.Spans, buf.spans...)
			return
		}
	}
	t.done = append(t.done, &Trace{TraceID: id, Spans: buf.spans})
	if len(t.done) > t.maxTraces {
		evicted := t.done[0].TraceID
		t.done = t.done[1:]
		delete(t.dropped, evicted)
	}
}

// Traces returns the completed traces, oldest first. The result is a deep
// enough copy to be used freely.
func (t *Tracer) Traces() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, len(t.done))
	for i, tr := range t.done {
		out[i] = Trace{TraceID: tr.TraceID, Spans: append([]SpanData(nil), tr.Spans...)}
	}
	return out
}

// Trace returns one completed trace by id, or false when the id is unknown
// (or still in flight).
func (t *Tracer) Trace(id string) (Trace, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range t.done {
		if tr.TraceID == id {
			return Trace{TraceID: tr.TraceID, Spans: append([]SpanData(nil), tr.Spans...)}, true
		}
	}
	return Trace{}, false
}

// Merge folds spans produced elsewhere (typically fetched from a remote
// server) into the completed trace with the same id, creating it when
// absent. Spans beyond the per-trace cap are dropped.
func (t *Tracer) Merge(tr Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range t.done {
		if d.TraceID == tr.TraceID {
			room := t.maxSpans - len(d.Spans)
			if room < 0 {
				room = 0
			}
			if len(tr.Spans) < room {
				room = len(tr.Spans)
			}
			d.Spans = append(d.Spans, tr.Spans[:room]...)
			return
		}
	}
	t.done = append(t.done, &Trace{TraceID: tr.TraceID, Spans: append([]SpanData(nil), tr.Spans...)})
	if len(t.done) > t.maxTraces {
		t.done = t.done[1:]
	}
}

// Len reports the number of completed traces buffered.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done)
}

// Summaries lists the completed traces newest first.
func (t *Tracer) Summaries() []TraceSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSummary, 0, len(t.done))
	for i := len(t.done) - 1; i >= 0; i-- {
		out = append(out, summarize(t.done[i]))
	}
	return out
}

func summarize(tr *Trace) TraceSummary {
	s := TraceSummary{TraceID: tr.TraceID, Spans: len(tr.Spans)}
	var rootEnd float64
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if sp.Error != "" {
			s.Errors++
		}
		if s.StartUnixNano == 0 || sp.StartUnixNano < s.StartUnixNano {
			s.StartUnixNano = sp.StartUnixNano
		}
		if sp.ParentID == "" && (s.Root == "" || sp.DurationMicros > rootEnd) {
			s.Root = sp.Name
			rootEnd = sp.DurationMicros
		}
	}
	// Duration: from the earliest start to the latest span end.
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		end := float64(sp.StartUnixNano-s.StartUnixNano)/1e3 + sp.DurationMicros
		if end > s.DurationMicros {
			s.DurationMicros = end
		}
	}
	return s
}

// --- live spans --------------------------------------------------------

// Span is an in-flight operation. The zero of *Span (nil) is a valid
// no-op span: every method may be called on it safely, so call sites do
// not guard on whether tracing is enabled.
type Span struct {
	tracer    *Tracer
	data      SpanData
	start     time.Time
	localRoot bool

	mu    sync.Mutex
	ended bool
	err   error
}

// TraceID returns the span's trace id ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SpanID returns the span's id ("" on a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string)
	}
	s.data.Attrs[k] = v
	s.mu.Unlock()
}

// SetError marks the span failed. A nil err is ignored, so callers can
// unconditionally write `sp.SetError(err); sp.End()`.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err
	s.data.Error = err.Error()
	s.mu.Unlock()
}

// End completes the span and records it with the tracer. Calling End more
// than once is safe; only the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.DurationMicros = float64(time.Since(s.start).Nanoseconds()) / 1e3
	sd := s.data
	err := s.err
	s.mu.Unlock()
	s.tracer.record(sd, s.localRoot)
	if err != nil {
		s.tracer.Emit(Event{
			Name:    sd.Name,
			TraceID: sd.TraceID,
			SpanID:  sd.SpanID,
			Err:     err,
			Attrs:   sd.Attrs,
		})
	}
}

// --- context plumbing --------------------------------------------------

type tracerKey struct{}
type spanKey struct{}
type remoteKey struct{}

// remoteParent is an extracted Traceparent: the continuation point for a
// trace started in another process.
type remoteParent struct{ traceID, spanID string }

// ContextWithTracer arranges for StartSpan calls beneath ctx to record
// into tr. This is the single opt-in point for tracing.
func ContextWithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, tr)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// ContextWithRemoteParent records an extracted remote (traceID, spanID)
// pair so the next StartSpan continues the caller's trace instead of
// opening a new one. The span started under a remote parent is still the
// local root: its End finalizes the locally collected part of the trace.
func ContextWithRemoteParent(ctx context.Context, traceID, spanID string) context.Context {
	if traceID == "" {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, remoteParent{traceID, spanID})
}

// SpanFromContext returns the innermost span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan opens a span named name beneath the span carried by ctx (or as
// a new trace root when there is none), recording into the context's
// tracer. attrs are alternating key/value pairs. When ctx carries no
// tracer the returned span is nil and every method on it is a no-op.
func StartSpan(ctx context.Context, name string, attrs ...string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	tr := TracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	sp := &Span{
		tracer: tr,
		start:  time.Now(),
		data: SpanData{
			SpanID:  newSpanID(),
			Name:    name,
			Service: tr.Service,
		},
	}
	sp.data.StartUnixNano = sp.start.UnixNano()
	if parent := SpanFromContext(ctx); parent != nil {
		sp.data.TraceID = parent.data.TraceID
		sp.data.ParentID = parent.data.SpanID
	} else if rp, ok := ctx.Value(remoteKey{}).(remoteParent); ok {
		sp.data.TraceID = rp.traceID
		sp.data.ParentID = rp.spanID
		sp.localRoot = true
	} else {
		sp.data.TraceID = newTraceID()
		sp.localRoot = true
	}
	for i := 0; i+1 < len(attrs); i += 2 {
		if sp.data.Attrs == nil {
			sp.data.Attrs = make(map[string]string, len(attrs)/2)
		}
		sp.data.Attrs[attrs[i]] = attrs[i+1]
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// newTraceID returns 16 random bytes hex-encoded (W3C trace-id width).
func newTraceID() string { return randHex(16) }

// newSpanID returns 8 random bytes hex-encoded (W3C parent-id width).
func newSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is unrecoverable for the process anyway;
		// degrade to a constant rather than panic inside instrumentation.
		for i := range b {
			b[i] = byte(i + 1)
		}
	}
	return hex.EncodeToString(b)
}
