package obs

import (
	"net/http"
	"strings"
)

// HeaderTraceparent carries trace context across process boundaries, in
// the W3C trace-context wire format:
//
//	00-<32 hex trace id>-<16 hex span id>-<2 hex flags>
//
// Only version 00 is produced or accepted.
const HeaderTraceparent = "Traceparent"

// Inject writes the span's trace context into h. A nil span injects
// nothing, so callers never guard.
func Inject(h http.Header, sp *Span) {
	if sp == nil {
		return
	}
	h.Set(HeaderTraceparent, "00-"+sp.TraceID()+"-"+sp.SpanID()+"-01")
}

// Extract parses a Traceparent header value into (traceID, spanID).
// ok is false for absent or malformed values.
func Extract(h http.Header) (traceID, spanID string, ok bool) {
	return ParseTraceparent(h.Get(HeaderTraceparent))
}

// ParseTraceparent validates and splits a traceparent value.
func ParseTraceparent(v string) (traceID, spanID string, ok bool) {
	parts := strings.Split(v, "-")
	if len(parts) != 4 || parts[0] != "00" {
		return "", "", false
	}
	traceID, spanID = parts[1], parts[2]
	if len(traceID) != 32 || len(spanID) != 16 || !isHex(traceID) || !isHex(spanID) || traceID == strings.Repeat("0", 32) {
		return "", "", false
	}
	return traceID, spanID, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
