package obs

import (
	"sync"
	"testing"
)

func TestKeyFormatting(t *testing.T) {
	if got := Key("requests_total"); got != "requests_total" {
		t.Errorf("bare key = %q", got)
	}
	got := Key("http_requests_total", "route", "GET /api/v1/trial")
	want := `http_requests_total{route="GET /api/v1/trial"}`
	if got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	// Labels sort by key regardless of argument order.
	a := Key("m", "b", "2", "a", "1")
	b := Key("m", "a", "1", "b", "2")
	if a != b || a != `m{a="1",b="2"}` {
		t.Errorf("label sorting: %q vs %q", a, b)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x_total") != c {
		t.Error("same key must return the same handle")
	}
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
	r.GaugeFunc("computed", func() float64 { return 42 })

	snap := r.Snapshot()
	if snap.Counters["x_total"] != 5 {
		t.Errorf("snapshot counter = %d", snap.Counters["x_total"])
	}
	if snap.Gauges["depth"] != 1.5 || snap.Gauges["computed"] != 42 {
		t.Errorf("snapshot gauges = %v", snap.Gauges)
	}
	if snap.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", snap.UptimeSeconds)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_ms", []float64{10, 100})
	for _, v := range []float64{1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 556 || h.Max() != 500 {
		t.Errorf("count=%d sum=%v max=%v", h.Count(), h.Sum(), h.Max())
	}
	hv := r.Snapshot().Histograms["latency_ms"]
	if hv.Buckets["10"] != 2 {
		t.Errorf("le=10 bucket = %d, want 2 (cumulative)", hv.Buckets["10"])
	}
	if hv.Buckets["100"] != 3 {
		t.Errorf("le=100 bucket = %d, want 3", hv.Buckets["100"])
	}
	if hv.Buckets["+Inf"] != 4 {
		t.Errorf("+Inf bucket = %d, want 4", hv.Buckets["+Inf"])
	}
}

func TestNilRegistryHandlesAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.GaugeFunc("c", func() float64 { return 1 })
	r.Histogram("d", nil).Observe(1)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestRegistryConcurrency hammers handle creation and updates from many
// goroutines; run with -race to prove the lock-free paths are clean.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared_total").Inc()
				r.Counter(Key("routed_total", "route", routeFor(w))).Inc()
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
				r.Histogram("lat_ms", nil).Observe(float64(i % 7))
				if i%50 == 0 {
					_ = r.Snapshot() // snapshot concurrently with writes
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*iters {
		t.Errorf("shared counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat_ms", nil).Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	var routed int64
	for k, v := range r.Snapshot().Counters {
		if len(k) > 12 && k[:12] == "routed_total" {
			routed += v
		}
	}
	if routed != workers*iters {
		t.Errorf("routed counters sum = %d, want %d", routed, workers*iters)
	}
}

func routeFor(w int) string {
	routes := []string{"GET /a", "GET /b", "POST /c", "DELETE /d"}
	return routes[w%len(routes)]
}
