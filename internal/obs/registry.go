package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a process-wide metrics surface: named counters, gauges and
// fixed-bucket histograms. Creation (Counter, Gauge, Histogram, …) takes a
// lock; updates through the returned handles are lock-free atomics, so hot
// paths resolve their handles once and then mutate without contention.
//
// Metric names embed their unit as a suffix (`_total`, `_ms`, `_us`) and
// label sets are folded into the key with Key, e.g.
// `http_requests_total{route="GET /api/v1/trial"}`. The flattened form is
// the stable wire schema served by GET /api/v1/metrics.
type Registry struct {
	start time.Time

	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry with its uptime clock started.
func NewRegistry() *Registry {
	return &Registry{
		start:      time.Now(),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		hists:      make(map[string]*Histogram),
	}
}

// Key folds alternating label key/value pairs into a metric name:
// Key("http_requests_total", "route", "GET /x") ==
// `http_requests_total{route="GET /x"}`. Labels are sorted by key so the
// same set always produces the same string.
func Key(name string, labels ...string) string {
	if len(labels) < 2 {
		return name
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(p.v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing integer. Handles are safe for
// concurrent use and updates are a single atomic add.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative n is ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultDurationBucketsMs is the standard latency bucketing (in
// milliseconds) used for request and operation durations.
var DefaultDurationBucketsMs = []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Histogram accumulates observations into fixed cumulative buckets. All
// updates are atomics: one add per bucket boundary crossed, plus CAS loops
// for the running sum and max.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; implicit +Inf last
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	maxBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultDurationBucketsMs
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Max returns the largest observation seen (0 before any Observe).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Counter returns the counter registered under key, creating it on first
// use. A nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(key string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[key]; c == nil {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge registered under key, creating it on first use.
func (r *Registry) Gauge(key string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g == nil {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed at snapshot time —
// for values the owner already tracks (repository size, slots in use).
// Re-registering a key replaces the function.
func (r *Registry) GaugeFunc(key string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[key] = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under key, creating it with
// the given bucket upper bounds on first use (nil bounds selects
// DefaultDurationBucketsMs). Bounds are fixed at creation; later callers
// get the existing histogram regardless of the bounds they pass.
func (r *Registry) Histogram(key string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[key]; h == nil {
		h = newHistogram(bounds)
		r.hists[key] = h
	}
	return h
}

// HistogramValue is the snapshot form of a histogram. Bucket keys are the
// upper bounds rendered as decimal strings plus "+Inf"; values are
// cumulative counts.
type HistogramValue struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Max     float64          `json:"max"`
	Buckets map[string]int64 `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric in the registry.
type Snapshot struct {
	UptimeSeconds float64                   `json:"uptime_seconds"`
	Counters      map[string]int64          `json:"counters"`
	Gauges        map[string]float64        `json:"gauges"`
	Histograms    map[string]HistogramValue `json:"histograms"`
}

// Snapshot captures the current value of every registered metric,
// evaluating gauge functions as it goes.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramValue{},
	}
	if r == nil {
		return s
	}
	s.UptimeSeconds = time.Since(r.start).Seconds()
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for k, fn := range r.gaugeFuncs {
		funcs[k] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.RUnlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		hv := HistogramValue{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Max:     h.Max(),
			Buckets: make(map[string]int64, len(h.bounds)+1),
		}
		var cum int64
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			hv.Buckets[formatBound(b)] = cum
		}
		cum += h.buckets[len(h.bounds)].Load()
		hv.Buckets["+Inf"] = cum
		s.Histograms[k] = hv
	}
	return s
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
