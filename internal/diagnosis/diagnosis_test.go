package diagnosis

import (
	"bytes"
	"strings"
	"testing"

	"perfknow/internal/apps/genidlest"
	"perfknow/internal/apps/msa"
	"perfknow/internal/core"
	"perfknow/internal/machine"
	"perfknow/internal/openuh"
	"perfknow/internal/perfdmf"
	"perfknow/internal/power"
	"perfknow/internal/rules"
	"perfknow/internal/sim"
)

func altix() machine.Config { return machine.Altix(16, 2) }

// session builds a core session with the knowledge base installed and the
// assets written to a temp dir.
func session(t *testing.T) (*core.Session, *bytes.Buffer, string) {
	t.Helper()
	dir := t.TempDir()
	if err := WriteAssets(dir); err != nil {
		t.Fatal(err)
	}
	s := core.NewSession(nil)
	var buf bytes.Buffer
	s.SetOutput(&buf)
	Install(s, dir+"/rules")
	return s, &buf, dir
}

func TestWriteAssets(t *testing.T) {
	_, _, dir := session(t)
	for name := range RuleFiles() {
		eng := rules.NewEngine()
		if err := eng.LoadFile(dir + "/rules/" + name); err != nil {
			t.Fatalf("rule file %s does not parse: %v", name, err)
		}
		if len(eng.Rules()) == 0 {
			t.Fatalf("rule file %s has no rules", name)
		}
	}
	for name := range ScriptFiles() {
		if !strings.HasSuffix(name, ".pes") {
			t.Fatalf("script %s has wrong extension", name)
		}
	}
}

// --- Case study A: MSA load imbalance ---------------------------------

func TestCaseStudyA_LoadImbalance(t *testing.T) {
	s, buf, _ := session(t)

	// Static scheduling: the rule must fire and recommend dynamic.
	static, err := msa.Run(altix(), msa.Params{
		Sequences: 64, MeanLen: 120, LenJitter: 60, Seed: 42,
		Threads: 16, Schedule: sim.Schedule{Kind: sim.StaticSched},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Repo.Save(static); err != nil {
		t.Fatal(err)
	}
	SetArgs(s, []string{static.App, static.Experiment, static.Name})
	if err := s.RunScript(ScriptLoadBalance); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Load imbalance detected: pairwise_inner") {
		t.Fatalf("load imbalance rule did not fire:\n%s", out)
	}
	if !strings.Contains(out, "negatively correlated") {
		t.Fatalf("correlation explanation missing:\n%s", out)
	}
	recs := s.LastResult().Recommendations
	foundSched := false
	for _, r := range recs {
		if r.Category == "scheduling" && strings.Contains(r.Text, "dynamic,1") {
			foundSched = true
		}
	}
	if !foundSched {
		t.Fatalf("no dynamic scheduling recommendation: %+v", recs)
	}
}

func TestCaseStudyA_DynamicIsQuiet(t *testing.T) {
	s, buf, _ := session(t)
	dynamic, err := msa.Run(altix(), msa.Params{
		Sequences: 64, MeanLen: 120, LenJitter: 60, Seed: 42,
		Threads: 16, Schedule: sim.Schedule{Kind: sim.DynamicSched, Chunk: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Repo.Save(dynamic); err != nil {
		t.Fatal(err)
	}
	SetArgs(s, []string{dynamic.App, dynamic.Experiment, dynamic.Name})
	if err := s.RunScript(ScriptLoadBalance); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Load imbalance detected") {
		t.Fatalf("imbalance rule fired on a balanced schedule:\n%s", buf.String())
	}
}

// --- Case study B: GenIDLEST locality ---------------------------------

func genTrial(t *testing.T, mode genidlest.Mode, threads int, opt bool) *perfdmf.Trial {
	t.Helper()
	cfg := genidlest.DefaultConfig(genidlest.Rib90(), mode, threads)
	cfg.Optimized = opt
	tr, err := genidlest.Run(altix(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCaseStudyB_StallsAndInefficiency(t *testing.T) {
	s, buf, _ := session(t)
	unopt := genTrial(t, genidlest.OpenMP, 16, false)
	if err := s.Repo.Save(unopt); err != nil {
		t.Fatal(err)
	}

	SetArgs(s, []string{unopt.App, unopt.Experiment, unopt.Name})
	if err := s.RunScript(ScriptInefficiency); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "higher than average inefficiency") {
		t.Fatalf("inefficiency rule did not fire:\n%s", out)
	}
	// The solver procedures are the targets.
	hits := 0
	for _, ev := range genidlest.SolverEvents() {
		if strings.Contains(out, "Event "+ev+" has higher than average inefficiency") {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("expected several solver procedures flagged, got %d:\n%s", hits, out)
	}

	buf.Reset()
	if err := s.RunScript(ScriptStallDecomposition); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "of stalls from L1D misses") {
		t.Fatalf("stall concentration rule did not fire:\n%s", out)
	}
	if !strings.Contains(out, "90% guideline") {
		t.Fatalf("90%% guideline not cited:\n%s", out)
	}
}

func TestCaseStudyB_LocalityAndSequentialBottleneck(t *testing.T) {
	s, buf, _ := session(t)
	unopt := genTrial(t, genidlest.OpenMP, 16, false)
	base := genTrial(t, genidlest.OpenMP, 1, false)
	if err := s.Repo.Save(unopt); err != nil {
		t.Fatal(err)
	}
	base.Name = "base_1"
	if err := s.Repo.Save(base); err != nil {
		t.Fatal(err)
	}

	SetArgs(s, []string{unopt.App, unopt.Experiment, unopt.Name, "base_1"})
	if err := s.RunScript(ScriptMemoryAnalysis); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "low ratio of local to remote memory references") {
		t.Fatalf("locality rule did not fire:\n%s", out)
	}
	if !strings.Contains(out, "exchange_var__ is scaling very poorly") {
		t.Fatalf("sequential bottleneck rule did not fire for exchange_var__:\n%s", out)
	}
	// Recommendations cover first-touch initialization and parallelizing
	// the exchange.
	var cats []string
	for _, r := range s.LastResult().Recommendations {
		cats = append(cats, r.Category)
	}
	joined := strings.Join(cats, ",")
	if !strings.Contains(joined, "locality") || !strings.Contains(joined, "parallelism") {
		t.Fatalf("recommendation categories: %v", cats)
	}
}

func TestCaseStudyB_OptimizedIsQuieter(t *testing.T) {
	s, buf, _ := session(t)
	opt := genTrial(t, genidlest.OpenMP, 16, true)
	if err := s.Repo.Save(opt); err != nil {
		t.Fatal(err)
	}
	SetArgs(s, []string{opt.App, opt.Experiment, opt.Name})
	if err := s.RunScript(ScriptMemoryAnalysis); err != nil {
		t.Fatal(err)
	}
	// The optimized version must not trigger the locality diagnosis for the
	// solver procedures.
	for _, ev := range genidlest.SolverEvents() {
		if strings.Contains(buf.String(), "Event "+ev+" has a low ratio of local to remote") {
			t.Fatalf("locality rule fired for %s in the optimized run:\n%s", ev, buf.String())
		}
	}
}

// --- Case study C: power ------------------------------------------------

func TestCaseStudyC_PowerRules(t *testing.T) {
	s, buf, _ := session(t)
	for _, lvl := range []openuh.OptLevel{openuh.O0, openuh.O1, openuh.O2, openuh.O3} {
		cfg := genidlest.DefaultConfig(genidlest.Rib90(), genidlest.MPI, 16)
		cfg.OptLevel = lvl
		tr, err := genidlest.Run(altix(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr.Name = lvl.String()
		if err := s.Repo.Save(tr); err != nil {
			t.Fatal(err)
		}
	}
	SetArgs(s, []string{"Fluid Dynamic", "rib 90rib"})
	if err := s.RunScript(ScriptPowerLevels); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "consumes the least energy") {
		t.Fatalf("low-energy rule did not fire:\n%s", out)
	}
	if !strings.Contains(out, "dissipates the least power") {
		t.Fatalf("low-power rule did not fire:\n%s", out)
	}
	// Table I's conclusion: the most aggressive level wins on energy and an
	// un/low-optimized level wins on power.
	var energyLevel, powerLevel string
	for _, r := range s.LastResult().Recommendations {
		switch r.Category {
		case "energy":
			energyLevel = r.Text
		case "power":
			powerLevel = r.Text
		}
	}
	if !strings.Contains(energyLevel, "-O3") && !strings.Contains(energyLevel, "-O2") {
		t.Fatalf("energy recommendation should name an aggressive level: %q", energyLevel)
	}
	if !strings.Contains(powerLevel, "-O0") && !strings.Contains(powerLevel, "-O2") && !strings.Contains(powerLevel, "-O1") {
		t.Fatalf("power recommendation: %q", powerLevel)
	}
}

func TestSyncOverheadRule(t *testing.T) {
	s, buf, _ := session(t)
	// Synthetic trial: a region that burns 40% of its cycles in a critical
	// section.
	tr := perfdmf.NewTrial("app", "sync", "t", 4)
	tr.AddMetric(perfdmf.TimeMetric)
	tr.AddMetric("CPU_CYCLES")
	tr.AddMetric("OMP_CRITICAL_CYCLES")
	main := tr.EnsureEvent("main")
	locky := tr.EnsureEvent("update_shared")
	for th := 0; th < 4; th++ {
		main.SetValue(perfdmf.TimeMetric, th, 1000, 100)
		main.SetValue("CPU_CYCLES", th, 1500000, 150000)
		locky.SetValue(perfdmf.TimeMetric, th, 600, 600)
		locky.SetValue("CPU_CYCLES", th, 900000, 900000)
		locky.SetValue("OMP_CRITICAL_CYCLES", th, 360000, 360000)
	}
	if err := s.Repo.Save(tr); err != nil {
		t.Fatal(err)
	}
	eng := s.Engine
	if err := eng.LoadString(OpenUHRules); err != nil {
		t.Fatal(err)
	}
	if _, err := AssertSyncFacts(eng, tr); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = buf
	found := false
	for _, line := range res.Output {
		if strings.Contains(line, "update_shared") && strings.Contains(line, "critical") {
			found = true
		}
	}
	if !found {
		t.Fatalf("sync rule did not fire:\n%v", res.Output)
	}
	recOK := false
	for _, r := range res.Recommendations {
		if r.Category == "synchronization" {
			recOK = true
		}
	}
	if !recOK {
		t.Fatalf("no synchronization recommendation: %+v", res.Recommendations)
	}
}

func TestThreadClusterOutlierRule(t *testing.T) {
	// The unoptimized GenIDLEST OpenMP run has a master thread doing the
	// serialized exchange copies while workers wait: k-means with k=2 must
	// isolate thread 0 and the outlier rule must name it.
	s, buf, _ := session(t)
	unopt := genTrial(t, genidlest.OpenMP, 16, false)
	if err := s.Repo.Save(unopt); err != nil {
		t.Fatal(err)
	}
	SetArgs(s, []string{unopt.App, unopt.Experiment, unopt.Name, "2"})
	if err := s.RunScript(ScriptThreadClusters); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Thread 0 behaves unlike the other 15 threads") {
		t.Fatalf("outlier rule did not isolate the master:\n%s", out)
	}
	if !strings.Contains(out, "mpi_send_recv_ko") && !strings.Contains(out, "exchange_var__") {
		t.Fatalf("dominant event should be the exchange path:\n%s", out)
	}
}

// --- Fact builders ------------------------------------------------------

func TestFactBuilderErrors(t *testing.T) {
	eng := rules.NewEngine()
	empty := perfdmf.NewTrial("a", "e", "t", 1)
	if _, err := AssertInefficiencyFacts(eng, empty); err == nil {
		t.Fatal("missing metrics accepted")
	}
	if _, err := AssertStallSourceFacts(eng, empty); err == nil {
		t.Fatal("missing metrics accepted")
	}
	if _, err := AssertLocalityFacts(eng, empty); err == nil {
		t.Fatal("missing metrics accepted")
	}
	if n := AssertPowerFacts(eng, nil); n != 0 {
		t.Fatal("empty power reports should assert nothing")
	}
}

func TestInefficiencyFormula(t *testing.T) {
	tr := perfdmf.NewTrial("a", "e", "t", 2)
	tr.AddMetric(metricCycles)
	tr.AddMetric(metricStalls)
	tr.AddMetric(metricFPOps)
	e := tr.EnsureEvent("x")
	for th := 0; th < 2; th++ {
		e.SetValue(metricCycles, th, 0, 1000)
		e.SetValue(metricStalls, th, 0, 400)
		e.SetValue(metricFPOps, th, 0, 50)
	}
	// Inefficiency = 50 * (400/1000) = 20.
	if got := Inefficiency(tr, e); got != 20 {
		t.Fatalf("Inefficiency = %g, want 20", got)
	}
	if got := Inefficiency(tr, tr.EnsureEvent("zero")); got != 0 {
		t.Fatalf("zero-cycle event inefficiency = %g", got)
	}
}

func TestMemoryStallsFormula(t *testing.T) {
	tr := perfdmf.NewTrial("a", "e", "t", 1)
	for _, m := range []string{"L2_DATA_REFERENCES_L2_ALL", "L2_MISSES", metricL3Miss, metricRemote, "DTLB_MISSES"} {
		tr.AddMetric(m)
	}
	e := tr.EnsureEvent("x")
	e.SetValue("L2_DATA_REFERENCES_L2_ALL", 0, 0, 1000)
	e.SetValue("L2_MISSES", 0, 0, 200)
	e.SetValue(metricL3Miss, 0, 0, 100)
	e.SetValue(metricRemote, 0, 0, 40)
	e.SetValue("DTLB_MISSES", 0, 0, 10)
	c := AltixCoefficients()
	want := 800*c.L2Lat + 100*c.L3Lat + 60*c.LocalLat + 40*c.RemoteLat + 10*c.TLBPenalty
	if got := MemoryStalls(e, c); got != want {
		t.Fatalf("MemoryStalls = %g, want %g", got, want)
	}
}

func TestAssertPowerFactsMarking(t *testing.T) {
	eng := rules.NewEngine()
	reports := map[string]*power.Report{
		"-O0": {WattsPerProc: 100, Joules: 1000, FLOPPerJoule: 1},
		"-O2": {WattsPerProc: 99, Joules: 100, FLOPPerJoule: 10},
		"-O3": {WattsPerProc: 103, Joules: 60, FLOPPerJoule: 19},
	}
	if n := AssertPowerFacts(eng, reports); n != 3 {
		t.Fatalf("asserted %d facts", n)
	}
	check := func(level, field string, want bool) {
		t.Helper()
		for _, f := range eng.FactsOfType("PowerFact") {
			if l, _ := f.Get("level"); l == level {
				if v, _ := f.Get(field); v != want {
					t.Fatalf("%s.%s = %v, want %v", level, field, v, want)
				}
				return
			}
		}
		t.Fatalf("no fact for level %s", level)
	}
	check("-O2", "lowestPower", true)
	check("-O3", "lowestEnergy", true)
	check("-O0", "lowestPower", false)
	// Balanced: -O2 has score (99/99)*(100/60)=1.67; -O3 (103/99)*(60/60)=1.04 → -O3.
	check("-O3", "balanced", true)
	check("-O2", "balanced", false)
}
