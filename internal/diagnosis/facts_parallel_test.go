package diagnosis

import (
	"fmt"
	"reflect"
	"testing"

	"perfknow/internal/parallel"
	"perfknow/internal/perfdmf"
	"perfknow/internal/rules"
)

// factTrial builds a trial carrying every metric the fact builders consume,
// wide enough that the parallel extraction actually fans out.
func factTrial(events int) *perfdmf.Trial {
	t := perfdmf.NewTrial("app", "exp", "facts", 8)
	metrics := []string{
		perfdmf.TimeMetric, metricCycles, metricStalls, metricStallL1D,
		metricStallFP, metricFPOps, metricL3Miss, metricRemote, metricLocal,
		"OMP_CRITICAL_CYCLES", "OMP_BARRIER_CYCLES",
	}
	for _, m := range metrics {
		t.AddMetric(m)
	}
	for j := 0; j < events; j++ {
		e := t.EnsureEvent(fmt.Sprintf("region_%02d", j))
		for th := 0; th < t.Threads; th++ {
			base := float64(j*31 + th*7 + 1)
			for k, m := range metrics {
				v := base * float64(k+1) * 11
				e.SetValue(m, th, v*1.5, v)
			}
		}
	}
	return t
}

// TestFactExtractionDeterministicAcrossWorkerCounts runs every per-event
// fact builder at one and at eight workers and requires identical working
// memory — same facts, same order, same IDs — since fact IDs are the
// tie-break for rule activations.
func TestFactExtractionDeterministicAcrossWorkerCounts(t *testing.T) {
	defer parallel.SetDefaultWorkers(0)
	tr := factTrial(48)
	base := factTrial(48)
	scaled := tr

	extract := func() []*rules.Fact {
		eng := rules.NewEngine()
		if _, err := AssertInefficiencyFacts(eng, tr); err != nil {
			t.Fatal(err)
		}
		if _, err := AssertStallSourceFacts(eng, tr); err != nil {
			t.Fatal(err)
		}
		if _, err := AssertLocalityFacts(eng, tr); err != nil {
			t.Fatal(err)
		}
		if _, err := AssertSyncFacts(eng, tr); err != nil {
			t.Fatal(err)
		}
		AssertScalingFacts(eng, base, scaled)
		return eng.Facts()
	}

	parallel.SetDefaultWorkers(1)
	seq := extract()
	parallel.SetDefaultWorkers(8)
	par := extract()

	if len(seq) == 0 {
		t.Fatal("no facts extracted")
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fact extraction differs between -j 1 and -j 8 (%d vs %d facts)", len(seq), len(par))
	}
}
