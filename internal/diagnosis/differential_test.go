package diagnosis

// End-to-end differential harness: every shipped analysis script runs
// through all four engine combinations — {compiled, tree-walking} script
// interpreter × {Rete, naive} rule matcher — and the session output bytes,
// fired-rule log and recommendations must be identical. This is the
// assets-level proof that the closure compiler and the Rete network are
// pure optimizations.

import (
	"fmt"
	"strings"
	"testing"

	"perfknow/internal/apps/genidlest"
	"perfknow/internal/apps/msa"
	"perfknow/internal/core"
	"perfknow/internal/openuh"
	"perfknow/internal/perfdmf"
	"perfknow/internal/sim"
)

// diffOutcome captures everything observable from one script run.
type diffOutcome struct {
	out   string
	fired []string
	recs  []string
	err   string
}

// runUnder executes scenario in a fresh session with the engine toggles
// set, and captures the observable outcome.
func runUnder(t *testing.T, treeWalk, naive bool, scenario func(t *testing.T, s *core.Session) error) diffOutcome {
	t.Helper()
	s, buf, _ := session(t)
	s.Interp.TreeWalk = treeWalk
	s.Engine.Naive = naive
	err := scenario(t, s)
	o := diffOutcome{out: buf.String()}
	if err != nil {
		o.err = err.Error()
	}
	if res := s.LastResult(); res != nil {
		o.fired = append(o.fired, res.Fired...)
		for _, r := range res.Recommendations {
			o.recs = append(o.recs, r.Category+": "+r.Text)
		}
	}
	return o
}

// diffScript runs scenario under all four engine combinations and fails on
// the first observable divergence from the default (compiled × Rete).
func diffScript(t *testing.T, scenario func(t *testing.T, s *core.Session) error) {
	t.Helper()
	type combo struct {
		name     string
		treeWalk bool
		naive    bool
	}
	combos := []combo{
		{"compiled+rete", false, false},
		{"treewalk+rete", true, false},
		{"compiled+naive", false, true},
		{"treewalk+naive", true, true},
	}
	want := runUnder(t, combos[0].treeWalk, combos[0].naive, scenario)
	if want.out == "" && want.err == "" {
		t.Fatalf("scenario produced no output and no error; nothing to compare")
	}
	for _, c := range combos[1:] {
		got := runUnder(t, c.treeWalk, c.naive, scenario)
		if got.err != want.err {
			t.Fatalf("%s error = %q, want %q", c.name, got.err, want.err)
		}
		if got.out != want.out {
			t.Fatalf("%s output diverges:\n--- %s\n%s\n--- compiled+rete\n%s", c.name, c.name, got.out, want.out)
		}
		if fmt.Sprint(got.fired) != fmt.Sprint(want.fired) {
			t.Fatalf("%s fired = %v, want %v", c.name, got.fired, want.fired)
		}
		if fmt.Sprint(got.recs) != fmt.Sprint(want.recs) {
			t.Fatalf("%s recommendations = %v, want %v", c.name, got.recs, want.recs)
		}
	}
}

func saveGen(t *testing.T, s *core.Session, threads int, opt bool) *perfdmf.Trial {
	t.Helper()
	tr := genTrial(t, genidlest.OpenMP, threads, opt)
	if err := s.Repo.Save(tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDifferentialAssetScripts(t *testing.T) {
	t.Run("LoadBalanceStatic", func(t *testing.T) {
		diffScript(t, func(t *testing.T, s *core.Session) error {
			tr, err := msa.Run(altix(), msa.Params{
				Sequences: 64, MeanLen: 120, LenJitter: 60, Seed: 42,
				Threads: 16, Schedule: sim.Schedule{Kind: sim.StaticSched},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Repo.Save(tr); err != nil {
				t.Fatal(err)
			}
			SetArgs(s, []string{tr.App, tr.Experiment, tr.Name})
			return s.RunScript(ScriptLoadBalance)
		})
	})

	t.Run("Inefficiency", func(t *testing.T) {
		diffScript(t, func(t *testing.T, s *core.Session) error {
			tr := saveGen(t, s, 16, false)
			SetArgs(s, []string{tr.App, tr.Experiment, tr.Name})
			return s.RunScript(ScriptInefficiency)
		})
	})

	t.Run("StallDecomposition", func(t *testing.T) {
		diffScript(t, func(t *testing.T, s *core.Session) error {
			tr := saveGen(t, s, 16, false)
			SetArgs(s, []string{tr.App, tr.Experiment, tr.Name})
			return s.RunScript(ScriptStallDecomposition)
		})
	})

	t.Run("StallsPerCycle", func(t *testing.T) {
		diffScript(t, func(t *testing.T, s *core.Session) error {
			tr := saveGen(t, s, 16, false)
			SetArgs(s, []string{tr.App, tr.Experiment, tr.Name})
			return s.RunScript(ScriptStallsPerCycle)
		})
	})

	t.Run("MemoryAnalysisWithBaseline", func(t *testing.T) {
		diffScript(t, func(t *testing.T, s *core.Session) error {
			tr := saveGen(t, s, 16, false)
			base := genTrial(t, genidlest.OpenMP, 1, false)
			base.Name = "base_1"
			if err := s.Repo.Save(base); err != nil {
				t.Fatal(err)
			}
			SetArgs(s, []string{tr.App, tr.Experiment, tr.Name, "base_1"})
			return s.RunScript(ScriptMemoryAnalysis)
		})
	})

	t.Run("PowerLevels", func(t *testing.T) {
		diffScript(t, func(t *testing.T, s *core.Session) error {
			for _, lvl := range []openuh.OptLevel{openuh.O0, openuh.O1, openuh.O2, openuh.O3} {
				cfg := genidlest.DefaultConfig(genidlest.Rib90(), genidlest.MPI, 16)
				cfg.OptLevel = lvl
				tr, err := genidlest.Run(altix(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				tr.Name = lvl.String()
				if err := s.Repo.Save(tr); err != nil {
					t.Fatal(err)
				}
			}
			SetArgs(s, []string{"Fluid Dynamic", "rib 90rib"})
			return s.RunScript(ScriptPowerLevels)
		})
	})

	t.Run("Synchronization", func(t *testing.T) {
		diffScript(t, func(t *testing.T, s *core.Session) error {
			tr := perfdmf.NewTrial("app", "sync", "t", 4)
			tr.AddMetric(perfdmf.TimeMetric)
			tr.AddMetric("CPU_CYCLES")
			tr.AddMetric("OMP_CRITICAL_CYCLES")
			main := tr.EnsureEvent("main")
			locky := tr.EnsureEvent("update_shared")
			for th := 0; th < 4; th++ {
				main.SetValue(perfdmf.TimeMetric, th, 1000, 100)
				main.SetValue("CPU_CYCLES", th, 1500000, 150000)
				locky.SetValue(perfdmf.TimeMetric, th, 600, 600)
				locky.SetValue("CPU_CYCLES", th, 900000, 900000)
				locky.SetValue("OMP_CRITICAL_CYCLES", th, 360000, 360000)
			}
			if err := s.Repo.Save(tr); err != nil {
				t.Fatal(err)
			}
			SetArgs(s, []string{"app", "sync", "t"})
			return s.RunScript(ScriptSynchronization)
		})
	})

	t.Run("ThreadClusters", func(t *testing.T) {
		diffScript(t, func(t *testing.T, s *core.Session) error {
			tr := saveGen(t, s, 16, false)
			SetArgs(s, []string{tr.App, tr.Experiment, tr.Name, "2"})
			return s.RunScript(ScriptThreadClusters)
		})
	})
}

// TestDifferentialAssetScriptsNonEmpty pins that the scenarios above
// actually exercise the knowledge base: the headline scripts must fire at
// least one rule under the default engines, or the differential comparison
// would be vacuous.
func TestDifferentialAssetScriptsNonEmpty(t *testing.T) {
	o := runUnder(t, false, false, func(t *testing.T, s *core.Session) error {
		tr := saveGen(t, s, 16, false)
		SetArgs(s, []string{tr.App, tr.Experiment, tr.Name})
		return s.RunScript(ScriptInefficiency)
	})
	if o.err != "" {
		t.Fatalf("inefficiency script failed: %s", o.err)
	}
	if len(o.fired) == 0 || !strings.Contains(o.out, "higher than average inefficiency") {
		t.Fatalf("inefficiency scenario fired nothing:\n%s", o.out)
	}
	t.Logf("fired=%d", len(o.fired))
}
