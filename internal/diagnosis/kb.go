// Package diagnosis is the performance knowledge base captured from the
// paper's three case studies: inference rules (in the .prl language of
// internal/rules) that recognize and explain load imbalance, processor and
// memory bottlenecks, data-locality defects, sequential bottlenecks, and
// power/energy trade-offs; the fact builders that derive those rules'
// working-memory facts from parallel profiles; and the PerfExplorer analysis
// scripts that drive the whole process. WriteAssets materializes the
// knowledge base under an assets/ directory for the command-line tools.
package diagnosis

import (
	"fmt"
	"os"
	"path/filepath"
)

// OpenUHRules is the compiler-integration rule base (§III-B and Fig. 2):
// stall-rate outliers, the Jarp stall-source concentration test, the
// inefficiency metric, data-locality defects and sequential bottlenecks.
const OpenUHRules = `# OpenUH integration rules (see Fig. 2 of the paper).

rule "Stalls per Cycle"
when
    f : MeanEventFact ( m : metric == "(BACK_END_BUBBLE_ALL / CPU_CYCLES)",
                        higherLower == HIGHER,
                        s : severity > 0.10,
                        e : eventName,
                        a : mainValue, v : eventValue,
                        factType == "Compared to Main" )
then
    println("Event " + e + " has a higher than average stall / cycle rate")
    println("        Average stall / cycle: " + a)
    println("        Event stall / cycle: " + v)
    println("        Percentage of total runtime: " + s)
    recommend("processor", "focus optimization on " + e + ": reduce pipeline stalls (cost model: pipeline_stalls)")
end

rule "High Inefficiency"
when
    f : InefficiencyFact ( e : eventName, v : value, higherLower == HIGHER,
                           s : severity > 0.05 )
then
    println("Event " + e + " has higher than average inefficiency (" + v + ")")
    recommend("inefficiency", "event " + e + " is a primary optimization target")
end

rule "Stall Source Concentration"
salience 5
when
    f : StallSourcesFact ( e : eventName, c : combinedFrac >= 0.9,
                           l : l1dFrac, p : fpFrac, severity > 0.05 )
then
    println("Event " + e + " has " + (c * 100) + "% of stalls from L1D misses (" + (l * 100) + "%) and FP stalls (" + (p * 100) + "%)")
    println("        Remaining stall sources can be ignored (90% guideline)")
    assert MemoryBoundFact ( eventName = e, l1dFrac = l, fpFrac = p )
end

rule "Memory Bound Event"
when
    m : MemoryBoundFact ( e : eventName, l : l1dFrac > 0.5 )
then
    println("Event " + e + " is memory bound: proceed to the memory analysis metrics")
    recommend("memory", "collect memory analysis metrics for " + e + " (L3 misses, local/remote ratio)")
end

rule "Poor Data Locality"
when
    f : LocalityFact ( e : eventName, r : remoteRatio > 0.5, s : severity > 0.05 )
then
    println("Event " + e + " has a low ratio of local to remote memory references (remote ratio " + r + ")")
    recommend("locality", "parallelize the initialization of data touched by " + e + " so first-touch placement distributes pages")
    recommend("compiler", "feed array region analysis: data for " + e + " must be initialized and accessed consistently across procedures")
end

rule "Sequential Bottleneck"
when
    f : ScalingFact ( e : eventName, sp : speedup < 2.0, th : threads >= 8,
                      s : severity > 0.10 )
then
    println("Event " + e + " is scaling very poorly (speedup " + sp + " at " + th + " threads, " + (s * 100) + "% of runtime)")
    recommend("parallelism", "parallelize " + e + ": its on-processor copies are serialized on the master thread")
end

rule "Synchronization Overhead"
when
    f : SyncFact ( e : eventName, c : criticalFrac > 0.10, s : severity > 0.05 )
then
    println("Event " + e + " spends " + (c * 100) + "% of its cycles waiting on critical sections or locks")
    recommend("synchronization", "shrink or eliminate the critical section in " + e + " (consider a reduction or privatization)")
end

rule "Barrier Wait"
when
    f : SyncFact ( e : eventName, b : barrierFrac > 0.25, s : severity > 0.05 )
    not Imbalance ( eventName == e, ratio > 0.25 )
then
    println("Event " + e + " spends " + (b * 100) + "% of its cycles in barrier waits without measured imbalance")
    recommend("synchronization", "check for serialized work before the barrier in " + e)
end

rule "Thread Behavior Outlier"
when
    c : ClusterFact ( singleton == true, th : memberThread, d : dominantEvent,
                      n : totalThreads >= 4 )
then
    println("Thread " + th + " behaves unlike the other " + (n - 1) + " threads (cluster of one, dominated by " + d + ")")
    recommend("clustering", "inspect " + d + " on thread " + th + ": it is doing different work than its peers")
end
`

// LoadBalanceRules is the MSA case-study rule (§III-A): imbalance ratio,
// severity, nesting, and negative correlation must all hold before the rule
// fires and suggests a scheduling change.
const LoadBalanceRules = `# Load-imbalance diagnosis for OpenMP worksharing loops (§III-A).

rule "Load Imbalance"
when
    i : Imbalance ( e : eventName, r : ratio > 0.25, s : severity > 0.05 )
    n : Nesting ( inner == e, o : outer )
    c : Correlation ( innerEvent == e, outerEvent == o, v : value < -0.9 )
then
    println("Load imbalance detected: " + e + " (stddev/mean " + r + ") inside " + o)
    println("        Per-thread times in " + e + " and " + o + " are negatively correlated (" + v + ")")
    println("        Threads finishing " + e + " early wait at the barrier in " + o)
    recommend("scheduling", "use a dynamic schedule with a small chunk size (dynamic,1) for " + e)
end

rule "Balanced Loop"
salience -10
when
    i : Imbalance ( e : eventName, r : ratio <= 0.25, s : severity > 0.25 )
    n : Nesting ( inner == e )
then
    println("Loop " + e + " is well balanced (stddev/mean " + r + ")")
end
`

// PowerRules recommends compiler optimization levels from the power/energy
// study (§III-C): O0-like levels minimize power, the most aggressive level
// minimizes energy, and the level flagged `balanced` is best for both.
const PowerRules = `# Power and energy recommendations (§III-C, Table I).

rule "Low Power Level"
when
    p : PowerFact ( l : level, lowestPower == true, w : watts )
then
    println("Optimization level " + l + " dissipates the least power (" + w + " W per processor)")
    recommend("power", "compile with " + l + " when minimizing power dissipation (reliability, cooling)")
end

rule "Low Energy Level"
when
    p : PowerFact ( l : level, lowestEnergy == true, j : joules )
then
    println("Optimization level " + l + " consumes the least energy (" + j + " J)")
    recommend("energy", "compile with " + l + " when minimizing energy consumption")
end

rule "Balanced Power/Energy Level"
when
    p : PowerFact ( l : level, balanced == true )
then
    println("Optimization level " + l + " balances power and energy efficiency")
    recommend("power-energy", "compile with " + l + " for combined power and energy efficiency")
end

rule "Energy Efficiency Scales With Optimization"
salience -5
when
    a : PowerFact ( la : level, fa : flopPerJoule )
    b : PowerFact ( lb : level != la, fb : flopPerJoule > fa )
    not PowerFact ( flopPerJoule > fb )
then
    println("Most energy-efficient level: " + lb + " (" + fb + " FLOP/J); least: check " + la)
end
`

// RuleFiles maps asset file names to rule sources.
func RuleFiles() map[string]string {
	return map[string]string{
		"OpenUHRules.prl":      OpenUHRules,
		"LoadBalanceRules.prl": LoadBalanceRules,
		"PowerRules.prl":       PowerRules,
	}
}

// WriteAssets materializes the rule files and analysis scripts under dir
// (creating dir/rules and dir/scripts).
func WriteAssets(dir string) error {
	rulesDir := filepath.Join(dir, "rules")
	scriptsDir := filepath.Join(dir, "scripts")
	for _, d := range []string{rulesDir, scriptsDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return fmt.Errorf("diagnosis: write assets: %w", err)
		}
	}
	for name, src := range RuleFiles() {
		if err := os.WriteFile(filepath.Join(rulesDir, name), []byte(src), 0o644); err != nil {
			return fmt.Errorf("diagnosis: write assets: %w", err)
		}
	}
	for name, src := range ScriptFiles() {
		if err := os.WriteFile(filepath.Join(scriptsDir, name), []byte(src), 0o644); err != nil {
			return fmt.Errorf("diagnosis: write assets: %w", err)
		}
	}
	return nil
}
