package diagnosis

import (
	"fmt"
	"math"
	"sort"

	"perfknow/internal/analysis"
	"perfknow/internal/parallel"
	"perfknow/internal/perfdmf"
	"perfknow/internal/power"
	"perfknow/internal/rules"
)

// flatEvents returns the non-callpath events in trial order — the candidate
// set every fact builder walks. Fact extraction computes per-event rows
// share-nothing in parallel and then asserts sequentially in this order, so
// fact IDs (and therefore rule activation tie-breaks) stay deterministic
// regardless of the worker count.
func flatEvents(t *perfdmf.Trial) []*perfdmf.Event {
	var evs []*perfdmf.Event
	for _, e := range t.Events {
		if !e.IsCallpath() {
			evs = append(evs, e)
		}
	}
	return evs
}

// Metric names the fact builders consume.
const (
	metricCycles   = "CPU_CYCLES"
	metricStalls   = "BACK_END_BUBBLE_ALL"
	metricStallL1D = "BE_L1D_FPU_BUBBLE_L1D"
	metricStallFP  = "BE_L1D_FPU_BUBBLE_FPU"
	metricFPOps    = "FP_OPS_RETIRED"
	metricL3Miss   = "L3_MISSES"
	metricRemote   = "REMOTE_MEMORY_ACCESSES"
	metricLocal    = "LOCAL_MEMORY_ACCESSES"
)

// severity returns event's share of total runtime (mean exclusive TIME over
// the main event's mean inclusive TIME).
func severity(t *perfdmf.Trial, e *perfdmf.Event) float64 {
	metric := perfdmf.TimeMetric
	if !t.HasMetric(metric) {
		metric = metricCycles
	}
	main := t.MainEvent(metric)
	if main == nil {
		return 0
	}
	total := perfdmf.Mean(main.Inclusive[metric])
	if total <= 0 {
		return 0
	}
	return perfdmf.Mean(e.Exclusive[metric]) / total
}

// Inefficiency computes the paper's §III-B inefficiency metric for one
// event: FLOPs * (stall cycles / total cycles), from mean exclusive values.
func Inefficiency(t *perfdmf.Trial, e *perfdmf.Event) float64 {
	cyc := perfdmf.Mean(e.Exclusive[metricCycles])
	if cyc <= 0 {
		return 0
	}
	return perfdmf.Mean(e.Exclusive[metricFPOps]) * perfdmf.Mean(e.Exclusive[metricStalls]) / cyc
}

// AssertInefficiencyFacts computes the inefficiency metric for every flat
// event and asserts an InefficiencyFact per event, marked HIGHER when above
// the cross-event average. Returns the number of facts asserted.
func AssertInefficiencyFacts(eng *rules.Engine, t *perfdmf.Trial) (int, error) {
	for _, m := range []string{metricCycles, metricStalls, metricFPOps} {
		if !t.HasMetric(m) {
			return 0, fmt.Errorf("diagnosis: trial %q lacks metric %q", t.Name, m)
		}
	}
	evs := flatEvents(t)
	if len(evs) == 0 {
		return 0, fmt.Errorf("diagnosis: trial %q has no events", t.Name)
	}
	type row struct {
		val float64
		sev float64
	}
	xs := make([]row, len(evs))
	parallel.Each(len(evs), 0, func(i int) {
		xs[i] = row{val: Inefficiency(t, evs[i]), sev: severity(t, evs[i])}
	})
	// Sum in event order so the average is bit-identical to the sequential
	// walk regardless of worker count.
	sum := 0.0
	for _, r := range xs {
		sum += r.val
	}
	avg := sum / float64(len(xs))
	n := 0
	for i, r := range xs {
		hl := "LOWER"
		if r.val > avg {
			hl = "HIGHER"
		} else if r.val == avg {
			hl = "EQUAL"
		}
		eng.Assert(rules.NewFact("InefficiencyFact", map[string]any{
			"eventName":   evs[i].Name,
			"value":       r.val,
			"average":     avg,
			"higherLower": hl,
			"severity":    r.sev,
		}))
		n++
	}
	return n, nil
}

// AssertStallSourceFacts implements the second §III-B step: per event, the
// fraction of BACK_END_BUBBLE_ALL attributable to L1D cache misses and to
// floating point stalls, with the 90% concentration guideline encoded in
// the combinedFrac field.
func AssertStallSourceFacts(eng *rules.Engine, t *perfdmf.Trial) (int, error) {
	for _, m := range []string{metricStalls, metricStallL1D, metricStallFP} {
		if !t.HasMetric(m) {
			return 0, fmt.Errorf("diagnosis: trial %q lacks metric %q", t.Name, m)
		}
	}
	evs := flatEvents(t)
	facts := make([]*rules.Fact, len(evs))
	parallel.Each(len(evs), 0, func(i int) {
		e := evs[i]
		all := perfdmf.Mean(e.Exclusive[metricStalls])
		if all <= 0 {
			return
		}
		l1d := perfdmf.Mean(e.Exclusive[metricStallL1D]) / all
		fp := perfdmf.Mean(e.Exclusive[metricStallFP]) / all
		facts[i] = rules.NewFact("StallSourcesFact", map[string]any{
			"eventName":    e.Name,
			"l1dFrac":      l1d,
			"fpFrac":       fp,
			"combinedFrac": l1d + fp,
			"severity":     severity(t, e),
		})
	})
	return assertAll(eng, facts), nil
}

// assertAll asserts the non-nil facts in slice order, preserving the
// deterministic fact-ID sequence the sequential builders produced.
func assertAll(eng *rules.Engine, facts []*rules.Fact) int {
	n := 0
	for _, f := range facts {
		if f != nil {
			eng.Assert(f)
			n++
		}
	}
	return n
}

// MemoryStalls evaluates the §III-B latency-weighted memory stall formula
// for one event from its mean exclusive counters:
//
//	(L2refs-L2miss)*L2lat + (L2miss-L3miss)*L3lat +
//	(L3miss-remote)*LocalLat + remote*RemoteLat + TLBmiss*TLBpenalty
type MemoryStallCoefficients struct {
	L2Lat, L3Lat, LocalLat, RemoteLat, TLBPenalty float64
}

// AltixCoefficients returns the Itanium2/NUMAlink4 latency coefficients.
func AltixCoefficients() MemoryStallCoefficients {
	return MemoryStallCoefficients{L2Lat: 5, L3Lat: 14, LocalLat: 145, RemoteLat: 595, TLBPenalty: 25}
}

// MemoryStalls applies the formula to one event.
func MemoryStalls(e *perfdmf.Event, c MemoryStallCoefficients) float64 {
	l2refs := perfdmf.Mean(e.Exclusive["L2_DATA_REFERENCES_L2_ALL"])
	l2miss := perfdmf.Mean(e.Exclusive["L2_MISSES"])
	l3miss := perfdmf.Mean(e.Exclusive[metricL3Miss])
	remote := perfdmf.Mean(e.Exclusive[metricRemote])
	tlb := perfdmf.Mean(e.Exclusive["DTLB_MISSES"])
	return math.Max(l2refs-l2miss, 0)*c.L2Lat +
		math.Max(l2miss-l3miss, 0)*c.L3Lat +
		math.Max(l3miss-remote, 0)*c.LocalLat +
		remote*c.RemoteLat +
		tlb*c.TLBPenalty
}

// AssertLocalityFacts asserts a LocalityFact per flat event with the paper's
// remote memory access ratio (remote accesses / L3 misses).
func AssertLocalityFacts(eng *rules.Engine, t *perfdmf.Trial) (int, error) {
	for _, m := range []string{metricL3Miss, metricRemote} {
		if !t.HasMetric(m) {
			return 0, fmt.Errorf("diagnosis: trial %q lacks metric %q", t.Name, m)
		}
	}
	evs := flatEvents(t)
	facts := make([]*rules.Fact, len(evs))
	parallel.Each(len(evs), 0, func(i int) {
		e := evs[i]
		l3 := perfdmf.Mean(e.Exclusive[metricL3Miss])
		if l3 <= 0 {
			return
		}
		remote := perfdmf.Mean(e.Exclusive[metricRemote])
		facts[i] = rules.NewFact("LocalityFact", map[string]any{
			"eventName":   e.Name,
			"remoteRatio": remote / l3,
			"l3Misses":    l3,
			"memoryStall": MemoryStalls(e, AltixCoefficients()),
			"severity":    severity(t, e),
		})
	})
	return assertAll(eng, facts), nil
}

// AssertScalingFacts compares per-event inclusive times between a baseline
// trial (typically 1 thread) and a scaled trial, asserting a ScalingFact
// per event present in both: speedup, thread count, and runtime share in
// the scaled trial. Inclusive time is used so that regions serialized on
// the master (exchange_var) are judged by their true duration rather than
// by exclusive time hidden in nested events and barrier waits.
func AssertScalingFacts(eng *rules.Engine, base, scaled *perfdmf.Trial) int {
	metric := perfdmf.TimeMetric
	evs := flatEvents(scaled)
	facts := make([]*rules.Fact, len(evs))
	parallel.Each(len(evs), 0, func(i int) {
		e := evs[i]
		if e.Name == "main" {
			return
		}
		be := base.Event(e.Name)
		if be == nil {
			return
		}
		bv := maxPositive(be.Inclusive[metric])
		ov := maxPositive(e.Inclusive[metric])
		if bv <= 0 || ov <= 0 {
			return
		}
		facts[i] = rules.NewFact("ScalingFact", map[string]any{
			"eventName": e.Name,
			"speedup":   bv / ov,
			"threads":   float64(scaled.Threads),
			"severity":  severity(scaled, e),
		})
	})
	return assertAll(eng, facts)
}

// maxPositive returns the largest value (events only present on some
// threads, like master-only regions, would otherwise be diluted by zeros).
func maxPositive(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// AssertSyncFacts asserts a SyncFact per flat event: the fraction of its
// cycles spent waiting on critical sections/locks and in barriers — the
// overhead sources the paper's future work targets for the parallel cost
// model. Events without cycle data are skipped.
func AssertSyncFacts(eng *rules.Engine, t *perfdmf.Trial) (int, error) {
	if !t.HasMetric(metricCycles) {
		return 0, fmt.Errorf("diagnosis: trial %q lacks metric %q", t.Name, metricCycles)
	}
	evs := flatEvents(t)
	facts := make([]*rules.Fact, len(evs))
	parallel.Each(len(evs), 0, func(i int) {
		e := evs[i]
		cyc := perfdmf.Mean(e.Exclusive[metricCycles])
		if cyc <= 0 {
			return
		}
		critical := perfdmf.Mean(e.Exclusive["OMP_CRITICAL_CYCLES"])
		barrier := perfdmf.Mean(e.Exclusive["OMP_BARRIER_CYCLES"])
		facts[i] = rules.NewFact("SyncFact", map[string]any{
			"eventName":    e.Name,
			"criticalFrac": critical / cyc,
			"barrierFrac":  barrier / cyc,
			"severity":     severity(t, e),
		})
	})
	return assertAll(eng, facts), nil
}

// AssertClusterFacts runs k-means over the threads of a trial (on per-event
// exclusive values of the metric) and asserts one ClusterFact per cluster —
// PerfExplorer's classic technique for spotting groups of threads with
// different behaviour (e.g. a master doing serialized copies while workers
// wait). A singleton cluster flags its thread as an outlier, along with the
// event dominating its centroid.
func AssertClusterFacts(eng *rules.Engine, t *perfdmf.Trial, metric string, k int) (int, error) {
	cl, err := analysis.KMeans(t, metric, k, 0)
	if err != nil {
		return 0, err
	}
	n := 0
	for c := 0; c < cl.K; c++ {
		member := -1
		for th, a := range cl.Assignment {
			if a == c {
				member = th
				break
			}
		}
		// Dominant event of the centroid.
		dom, domVal := "", -1.0
		for j, ev := range cl.Events {
			if cl.Centroids[c][j] > domVal {
				dom, domVal = ev, cl.Centroids[c][j]
			}
		}
		eng.Assert(rules.NewFact("ClusterFact", map[string]any{
			"cluster":        c,
			"size":           cl.Sizes[c],
			"singleton":      cl.Sizes[c] == 1,
			"memberThread":   member,
			"dominantEvent":  dom,
			"dominantWeight": domVal,
			"totalThreads":   t.Threads,
		}))
		n++
	}
	return n, nil
}

// AssertPowerFacts asserts one PowerFact per optimization level from power
// reports, marking the lowest-power, lowest-energy and balanced levels. The
// balanced level minimizes the product of normalized power and energy.
func AssertPowerFacts(eng *rules.Engine, reports map[string]*power.Report) int {
	if len(reports) == 0 {
		return 0
	}
	levels := make([]string, 0, len(reports))
	for l := range reports {
		levels = append(levels, l)
	}
	sort.Strings(levels)
	minW, minJ := math.Inf(1), math.Inf(1)
	for _, l := range levels {
		if reports[l].WattsPerProc < minW {
			minW = reports[l].WattsPerProc
		}
		if reports[l].Joules < minJ {
			minJ = reports[l].Joules
		}
	}
	bestBalanced, bestScore := "", math.Inf(1)
	for _, l := range levels {
		score := (reports[l].WattsPerProc / minW) * (reports[l].Joules / minJ)
		if score < bestScore {
			bestScore, bestBalanced = score, l
		}
	}
	n := 0
	for _, l := range levels {
		r := reports[l]
		eng.Assert(rules.NewFact("PowerFact", map[string]any{
			"level":        l,
			"watts":        r.WattsPerProc,
			"joules":       r.Joules,
			"flopPerJoule": r.FLOPPerJoule,
			"ipc":          r.IPC,
			"lowestPower":  r.WattsPerProc == minW,
			"lowestEnergy": r.Joules == minJ,
			"balanced":     l == bestBalanced,
		}))
		n++
	}
	return n
}
