package diagnosis

import (
	"fmt"

	"perfknow/internal/core"
	"perfknow/internal/perfdmf"
	"perfknow/internal/power"
	"perfknow/internal/script"
)

// Install binds the knowledge base's fact builders into a session's script
// interpreter and points `rulesdir` at the directory holding the .prl
// files. Scripts additionally receive their arguments through the `args`
// global (set per run with SetArgs).
func Install(s *core.Session, rulesDir string) {
	in := s.Interp
	in.SetGlobal("rulesdir", rulesDir)
	in.SetGlobal("args", script.NewList())

	trialArg := func(fn string, v script.Value) (*perfdmf.Trial, error) {
		to, ok := v.(*core.TrialObject)
		if !ok {
			return nil, fmt.Errorf("%s expects a trial, got %T", fn, v)
		}
		return to.Trial, nil
	}

	in.SetGlobal("InefficiencyFacts", script.NewBuiltin("InefficiencyFacts", func(args []script.Value) (script.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("InefficiencyFacts(trial) expects 1 argument")
		}
		t, err := trialArg("InefficiencyFacts", args[0])
		if err != nil {
			return nil, err
		}
		n, err := AssertInefficiencyFacts(s.Engine, t)
		return float64(n), err
	}))

	in.SetGlobal("StallSourceFacts", script.NewBuiltin("StallSourceFacts", func(args []script.Value) (script.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("StallSourceFacts(trial) expects 1 argument")
		}
		t, err := trialArg("StallSourceFacts", args[0])
		if err != nil {
			return nil, err
		}
		n, err := AssertStallSourceFacts(s.Engine, t)
		return float64(n), err
	}))

	in.SetGlobal("LocalityFacts", script.NewBuiltin("LocalityFacts", func(args []script.Value) (script.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("LocalityFacts(trial) expects 1 argument")
		}
		t, err := trialArg("LocalityFacts", args[0])
		if err != nil {
			return nil, err
		}
		n, err := AssertLocalityFacts(s.Engine, t)
		return float64(n), err
	}))

	in.SetGlobal("SyncFacts", script.NewBuiltin("SyncFacts", func(args []script.Value) (script.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("SyncFacts(trial) expects 1 argument")
		}
		t, err := trialArg("SyncFacts", args[0])
		if err != nil {
			return nil, err
		}
		n, err := AssertSyncFacts(s.Engine, t)
		return float64(n), err
	}))

	in.SetGlobal("ScalingFacts", script.NewBuiltin("ScalingFacts", func(args []script.Value) (script.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("ScalingFacts(baseTrial, scaledTrial) expects 2 arguments")
		}
		base, err := trialArg("ScalingFacts", args[0])
		if err != nil {
			return nil, err
		}
		scaled, err := trialArg("ScalingFacts", args[1])
		if err != nil {
			return nil, err
		}
		return float64(AssertScalingFacts(s.Engine, base, scaled)), nil
	}))

	in.SetGlobal("ClusterFacts", script.NewBuiltin("ClusterFacts", func(args []script.Value) (script.Value, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("ClusterFacts(trial, metric, k) expects 3 arguments")
		}
		t, err := trialArg("ClusterFacts", args[0])
		if err != nil {
			return nil, err
		}
		k, err := script.ToFloat(args[2])
		if err != nil {
			return nil, err
		}
		n, err := AssertClusterFacts(s.Engine, t, script.ToString(args[1]), int(k))
		return float64(n), err
	}))

	in.SetGlobal("PowerEstimate", script.NewBuiltin("PowerEstimate", func(args []script.Value) (script.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("PowerEstimate(trial) expects 1 argument")
		}
		t, err := trialArg("PowerEstimate", args[0])
		if err != nil {
			return nil, err
		}
		rep, err := power.Itanium2().Estimate(t)
		if err != nil {
			return nil, err
		}
		m := script.NewMap()
		m.Entries["watts"] = rep.WattsPerProc
		m.Entries["totalWatts"] = rep.TotalWatts
		m.Entries["joules"] = rep.Joules
		m.Entries["flopPerJoule"] = rep.FLOPPerJoule
		m.Entries["seconds"] = rep.Seconds
		m.Entries["ipc"] = rep.IPC
		return m, nil
	}))

	in.SetGlobal("PowerFacts", script.NewBuiltin("PowerFacts", func(args []script.Value) (script.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("PowerFacts(levelTrials) expects 1 argument")
		}
		m, ok := args[0].(*script.Map)
		if !ok {
			return nil, fmt.Errorf("PowerFacts expects a map of level -> trial")
		}
		model := power.Itanium2()
		reports := make(map[string]*power.Report, len(m.Entries))
		for level, v := range m.Entries {
			t, err := trialArg("PowerFacts", v)
			if err != nil {
				return nil, err
			}
			rep, err := model.Estimate(t)
			if err != nil {
				return nil, fmt.Errorf("level %s: %w", level, err)
			}
			reports[level] = rep
		}
		return float64(AssertPowerFacts(s.Engine, reports)), nil
	}))
}

// SetArgs sets the `args` global for the next script run.
func SetArgs(s *core.Session, args []string) {
	l := script.NewList()
	for _, a := range args {
		l.Items = append(l.Items, a)
	}
	s.Interp.SetGlobal("args", l)
}
