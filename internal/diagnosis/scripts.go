package diagnosis

// The PerfExplorer analysis scripts that capture the paper's workflows.
// Each script expects the host to define `rulesdir` (directory holding the
// .prl files) and `args` (a list of script arguments, usually
// [application, experiment, trial...]).

// ScriptStallsPerCycle is the Fig. 1 sample script: derive the stall/cycle
// metric, compare every event with main, and process the rules.
const ScriptStallsPerCycle = `# Sample analysis script (Fig. 1 of the paper).
harness = RuleHarness(rulesdir + "/OpenUHRules.prl")
trial = TrialMeanResult(Utilities.getTrial(args[0], args[1], args[2]))
derived = DeriveMetric(trial, "BACK_END_BUBBLE_ALL", "CPU_CYCLES", "/")
metric = DeriveMetricName("BACK_END_BUBBLE_ALL", "CPU_CYCLES", "/")
for event in derived.events {
    MeanEventFact.compareEventToMain(derived, metric, event)
}
harness.processRules()
`

// ScriptInefficiency runs the first §III-B step: compute the inefficiency
// metric for every instrumented region and flag the outliers.
const ScriptInefficiency = `# Inefficiency = FLOPs * (stall cycles / total cycles)  (§III-B step 1)
harness = RuleHarness(rulesdir + "/OpenUHRules.prl")
trial = Utilities.getTrial(args[0], args[1], args[2])
n = InefficiencyFacts(trial)
print("asserted " + str(n) + " inefficiency facts")
harness.processRules()
`

// ScriptStallDecomposition runs the second §III-B step: decompose total
// stalls and test the 90% L1D+FP concentration guideline.
const ScriptStallDecomposition = `# Total Stall Cycles decomposition (§III-B step 2, Jarp's methodology)
harness = RuleHarness(rulesdir + "/OpenUHRules.prl")
trial = Utilities.getTrial(args[0], args[1], args[2])
n = StallSourceFacts(trial)
print("asserted " + str(n) + " stall-source facts")
harness.processRules()
`

// ScriptMemoryAnalysis runs the third §III-B step: the latency-weighted
// memory stall model and the remote access ratio, optionally joined with
// per-event scaling facts when a baseline trial is supplied as args[3].
const ScriptMemoryAnalysis = `# Memory analysis metrics (§III-B step 3)
harness = RuleHarness(rulesdir + "/OpenUHRules.prl")
trial = Utilities.getTrial(args[0], args[1], args[2])
n = LocalityFacts(trial)
print("asserted " + str(n) + " locality facts")
if len(args) > 3 {
    base = Utilities.getTrial(args[0], args[1], args[3])
    m = ScalingFacts(base, trial)
    print("asserted " + str(m) + " scaling facts")
}
harness.processRules()
`

// ScriptLoadBalance captures the MSA tuning process (§III-A): per-event
// imbalance, nesting and correlation facts, then the load-imbalance rule.
const ScriptLoadBalance = `# Load balance test for OpenMP worksharing loops (§III-A)
harness = RuleHarness(rulesdir + "/LoadBalanceRules.prl")
trial = Utilities.getTrial(args[0], args[1], args[2])
n = LoadBalanceFacts(trial, "TIME")
print("asserted " + str(n) + " load-balance facts")
harness.processRules()
`

// ScriptPowerLevels captures the power study (§III-C): estimate power and
// energy for every trial of an experiment (one per optimization level) and
// let the rules recommend levels.
const ScriptPowerLevels = `# Power and energy recommendations across optimization levels (§III-C)
harness = RuleHarness(rulesdir + "/PowerRules.prl")
levels = {}
for name in Utilities.trials(args[0], args[1]) {
    levels[name] = Utilities.getTrial(args[0], args[1], name)
}
n = PowerFacts(levels)
print("asserted " + str(n) + " power facts")
harness.processRules()
`

// ScriptSynchronization surfaces critical-section and barrier overhead —
// the overhead sources the paper's future work feeds to the parallel cost
// model.
const ScriptSynchronization = `# Synchronization overhead: critical sections, locks, barrier waits
harness = RuleHarness(rulesdir + "/OpenUHRules.prl")
trial = Utilities.getTrial(args[0], args[1], args[2])
n = SyncFacts(trial)
m = LoadBalanceFacts(trial, "TIME")
print("asserted " + str(n) + " sync facts, " + str(m) + " load-balance facts")
harness.processRules()
`

// ScriptThreadClusters groups threads by behaviour with k-means and lets
// the outlier rule explain clusters of one — PerfExplorer's signature
// clustering analysis applied to master/worker asymmetry.
const ScriptThreadClusters = `# k-means over threads: find groups of threads doing different work
harness = RuleHarness(rulesdir + "/OpenUHRules.prl")
trial = Utilities.getTrial(args[0], args[1], args[2])
k = 2
if len(args) > 3 { k = num(args[3]) }
n = ClusterFacts(trial, "TIME", k)
print("asserted " + str(n) + " cluster facts (k=" + str(k) + ")")
harness.processRules()
`

// ScriptFiles maps asset file names to script sources.
func ScriptFiles() map[string]string {
	return map[string]string{
		"stalls_per_cycle.pes":    ScriptStallsPerCycle,
		"inefficiency.pes":        ScriptInefficiency,
		"stall_decomposition.pes": ScriptStallDecomposition,
		"memory_analysis.pes":     ScriptMemoryAnalysis,
		"load_balance.pes":        ScriptLoadBalance,
		"power_levels.pes":        ScriptPowerLevels,
		"synchronization.pes":     ScriptSynchronization,
		"thread_clusters.pes":     ScriptThreadClusters,
	}
}
