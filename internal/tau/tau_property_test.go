package tau

import (
	"math/rand"
	"testing"

	"perfknow/internal/counters"
	"perfknow/internal/perfdmf"
)

// TestRandomNestingInvariants drives the profiler with randomly nested,
// well-bracketed enter/leave sequences and checks the accounting
// invariants: exclusive <= inclusive everywhere, the root's inclusive
// equals total elapsed time, and the sum of all exclusive values equals the
// root's inclusive value (every cycle is attributed to exactly one region).
func TestRandomNestingInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := []string{"a", "b", "c", "d", "e"}

	for trial := 0; trial < 50; trial++ {
		p := NewProfiler(Options{Threads: 1, ClockHz: 1e9, CallpathDepth: 0})
		tp := p.Thread(0)
		var cs counters.Set
		clock := uint64(0)

		tp.Enter("root", clock, cs)
		var stack []string
		depth := 0
		steps := 5 + rng.Intn(40)
		for i := 0; i < steps; i++ {
			clock += uint64(1 + rng.Intn(100))
			cs.Inc(counters.FPOps, uint64(rng.Intn(50)))
			switch {
			case depth > 0 && rng.Intn(2) == 0:
				ev := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				depth--
				tp.Leave(ev, clock, cs)
			case depth < 4:
				ev := events[rng.Intn(len(events))]
				stack = append(stack, ev)
				depth++
				tp.Enter(ev, clock, cs)
			}
		}
		for len(stack) > 0 {
			clock += uint64(1 + rng.Intn(100))
			ev := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			tp.Leave(ev, clock, cs)
		}
		clock += 10
		tp.Leave("root", clock, cs)

		tr, err := p.Trial("a", "e", "t")
		if err != nil {
			t.Fatal(err)
		}
		var exclSum float64
		for _, e := range tr.Events {
			inc := e.Inclusive[perfdmf.TimeMetric][0]
			exc := e.Exclusive[perfdmf.TimeMetric][0]
			if exc > inc+1e-9 {
				t.Fatalf("trial %d: event %q exclusive %g > inclusive %g", trial, e.Name, exc, inc)
			}
			exclSum += exc
			// Counter invariant too.
			if e.Exclusive["FP_OPS_RETIRED"] != nil &&
				e.Exclusive["FP_OPS_RETIRED"][0] > e.Inclusive["FP_OPS_RETIRED"][0] {
				t.Fatalf("trial %d: event %q FP exclusive exceeds inclusive", trial, e.Name)
			}
		}
		rootInc := tr.Event("root").Inclusive[perfdmf.TimeMetric][0]
		wantTotal := float64(clock) / 1e9 * 1e6
		if diff := rootInc - wantTotal; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: root inclusive %g != elapsed %g", trial, rootInc, wantTotal)
		}
		if diff := exclSum - rootInc; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: exclusive sum %g != root inclusive %g", trial, exclSum, rootInc)
		}
	}
}
