package tau

import (
	"strings"
	"testing"

	"perfknow/internal/counters"
	"perfknow/internal/perfdmf"
)

func newProf(threads int) *Profiler {
	return NewProfiler(Options{Threads: threads, ClockHz: 1e6, CallpathDepth: 4})
}

// run one thread through main{ loop{ kernel } kernel } with explicit clocks.
func runNested(tp *ThreadProfile) {
	var cs counters.Set
	tp.Enter("main", 0, cs)
	tp.Enter("loop", 10, cs)
	cs.Inc(counters.FPOps, 100)
	tp.Enter("kernel", 20, cs)
	cs.Inc(counters.FPOps, 50)
	tp.Leave("kernel", 50, cs) // kernel: 30 cyc, 50 fp
	tp.Leave("loop", 60, cs)   // loop: 50 cyc incl, 20 excl; fp 150 incl, 100 excl
	cs.Inc(counters.Loads, 7)
	tp.Enter("kernel", 70, cs)
	tp.Leave("kernel", 100, cs) // kernel again: 30 cyc
	tp.Leave("main", 120, cs)   // main: 120 incl, 120-50-30=40 excl
}

func TestInclusiveExclusiveAccounting(t *testing.T) {
	p := newProf(1)
	tp := p.Thread(0)
	runNested(tp)

	if got := tp.InclusiveCycles("main"); got != 120 {
		t.Fatalf("main inclusive = %d, want 120", got)
	}
	if got := tp.ExclusiveCycles("main"); got != 40 {
		t.Fatalf("main exclusive = %d, want 40", got)
	}
	if got := tp.InclusiveCycles("loop"); got != 50 {
		t.Fatalf("loop inclusive = %d, want 50", got)
	}
	if got := tp.ExclusiveCycles("loop"); got != 20 {
		t.Fatalf("loop exclusive = %d, want 20", got)
	}
	if got := tp.InclusiveCycles("kernel"); got != 60 {
		t.Fatalf("kernel inclusive = %d, want 60", got)
	}
	if got := tp.Calls("kernel"); got != 2 {
		t.Fatalf("kernel calls = %d, want 2", got)
	}
	if got := tp.Calls("never"); got != 0 {
		t.Fatalf("unknown event calls = %d", got)
	}
}

func TestCallpathEvents(t *testing.T) {
	p := newProf(1)
	tp := p.Thread(0)
	runNested(tp)

	if got := tp.InclusiveCycles("main => loop"); got != 50 {
		t.Fatalf("callpath main=>loop inclusive = %d, want 50", got)
	}
	if got := tp.InclusiveCycles("main => loop => kernel"); got != 30 {
		t.Fatalf("deep callpath inclusive = %d, want 30", got)
	}
	if got := tp.InclusiveCycles("main => kernel"); got != 30 {
		t.Fatalf("second callpath inclusive = %d, want 30", got)
	}
}

func TestFlatOnlyWhenCallpathDisabled(t *testing.T) {
	p := NewProfiler(Options{Threads: 1, ClockHz: 1e6})
	tp := p.Thread(0)
	runNested(tp)
	if got := tp.InclusiveCycles("main => loop"); got != 0 {
		t.Fatalf("callpath recorded despite depth 0: %d", got)
	}
	if got := tp.InclusiveCycles("loop"); got != 50 {
		t.Fatalf("flat event missing: %d", got)
	}
}

func TestCounterDeltas(t *testing.T) {
	p := newProf(1)
	tp := p.Thread(0)
	runNested(tp)
	tr, err := p.Trial("app", "exp", "t1")
	if err != nil {
		t.Fatal(err)
	}
	loop := tr.Event("loop")
	if loop.Inclusive["FP_OPS_RETIRED"][0] != 150 {
		t.Fatalf("loop inclusive FP = %g, want 150", loop.Inclusive["FP_OPS_RETIRED"][0])
	}
	if loop.Exclusive["FP_OPS_RETIRED"][0] != 100 {
		t.Fatalf("loop exclusive FP = %g, want 100", loop.Exclusive["FP_OPS_RETIRED"][0])
	}
	main := tr.Event("main")
	if main.Inclusive["LOADS_RETIRED"][0] != 7 {
		t.Fatalf("main inclusive loads = %g, want 7", main.Inclusive["LOADS_RETIRED"][0])
	}
	// The loads happened between loop and the second kernel, in main's
	// exclusive region.
	if main.Exclusive["LOADS_RETIRED"][0] != 7 {
		t.Fatalf("main exclusive loads = %g, want 7", main.Exclusive["LOADS_RETIRED"][0])
	}
}

func TestTrialTimeMetric(t *testing.T) {
	p := newProf(2)
	runNested(p.Thread(0))
	var cs counters.Set
	p.Thread(1).Enter("main", 0, cs)
	p.Thread(1).Leave("main", 1000, cs)

	tr, err := p.Trial("app", "exp", "t1")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// ClockHz = 1e6 → 1 cycle = 1 microsecond.
	main := tr.Event("main")
	if main.Inclusive[perfdmf.TimeMetric][0] != 120 {
		t.Fatalf("thread 0 main TIME = %g usec, want 120", main.Inclusive[perfdmf.TimeMetric][0])
	}
	if main.Inclusive[perfdmf.TimeMetric][1] != 1000 {
		t.Fatalf("thread 1 main TIME = %g usec, want 1000", main.Inclusive[perfdmf.TimeMetric][1])
	}
	// Thread 1 never ran loop/kernel: zeros, not missing data.
	if tr.Event("loop").Inclusive[perfdmf.TimeMetric][1] != 0 {
		t.Fatal("thread 1 loop TIME should be 0")
	}
	// Only counters that fired become metrics.
	if tr.HasMetric("L3_MISSES") {
		t.Fatal("L3_MISSES should not be a metric — it never fired")
	}
	if !tr.HasMetric("FP_OPS_RETIRED") || !tr.HasMetric("LOADS_RETIRED") {
		t.Fatalf("expected FP and load metrics, got %v", tr.Metrics)
	}
}

func TestAddExclusiveOverhead(t *testing.T) {
	p := newProf(1)
	tp := p.Thread(0)
	var cs counters.Set
	tp.Enter("main", 0, cs)
	var wait counters.Set
	wait.Inc(counters.OMPBarrierCycles, 500)
	tp.AddExclusive("omp_barrier", 500, wait)
	tp.Leave("main", 1000, cs)

	if got := tp.InclusiveCycles("omp_barrier"); got != 500 {
		t.Fatalf("barrier cycles = %d", got)
	}
	tr, err := p.Trial("a", "e", "t")
	if err != nil {
		t.Fatal(err)
	}
	b := tr.Event("omp_barrier")
	if b.Exclusive["OMP_BARRIER_CYCLES"][0] != 500 {
		t.Fatalf("barrier counter = %g", b.Exclusive["OMP_BARRIER_CYCLES"][0])
	}
	if b.Calls[0] != 0 {
		t.Fatalf("synthetic event calls = %g, want 0", b.Calls[0])
	}
}

func TestTrialRejectsOpenTimers(t *testing.T) {
	p := newProf(1)
	var cs counters.Set
	p.Thread(0).Enter("main", 0, cs)
	if _, err := p.Trial("a", "e", "t"); err == nil {
		t.Fatal("Trial with open timers should fail")
	} else if !strings.Contains(err.Error(), "main") {
		t.Fatalf("error should name the open timer: %v", err)
	}
}

func TestMismatchedLeavePanics(t *testing.T) {
	p := newProf(1)
	tp := p.Thread(0)
	var cs counters.Set
	tp.Enter("a", 0, cs)
	for name, f := range map[string]func(){
		"wrong event": func() { tp.Leave("b", 10, cs) },
		"clock back":  func() { tp.Leave("a", 0, cs); tp.Enter("c", 10, cs); tp.Leave("c", 5, cs) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
	// Empty-stack Leave also panics.
	p2 := newProf(1)
	defer func() {
		if recover() == nil {
			t.Error("empty-stack Leave: no panic")
		}
	}()
	p2.Thread(0).Leave("x", 0, counters.Set{})
}

func TestProfilerConstructionErrors(t *testing.T) {
	for name, f := range map[string]func(){
		"zero threads": func() { NewProfiler(Options{Threads: 0, ClockHz: 1}) },
		"zero clock":   func() { NewProfiler(Options{Threads: 1}) },
		"bad thread":   func() { newProf(1).Thread(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// Invariant: for every event and thread, exclusive <= inclusive in both
// cycles and every counter.
func TestExclusiveNeverExceedsInclusive(t *testing.T) {
	p := newProf(1)
	tp := p.Thread(0)
	runNested(tp)
	tr, err := p.Trial("a", "e", "t")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		for _, m := range tr.Metrics {
			for th := 0; th < tr.Threads; th++ {
				if e.Exclusive[m][th] > e.Inclusive[m][th] {
					t.Fatalf("event %q metric %q thread %d: excl %g > incl %g",
						e.Name, m, th, e.Exclusive[m][th], e.Inclusive[m][th])
				}
			}
		}
	}
}
