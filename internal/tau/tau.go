// Package tau is the measurement runtime: the instrumentation layer that the
// compiler-inserted probes call at region entry and exit. It maintains, per
// thread of execution, a timer stack and an accumulator per instrumented
// event, producing TAU-style parallel profiles — per-thread inclusive and
// exclusive values for wall-clock time and every hardware counter, plus
// optional callpath events ("main => loop => kernel").
//
// The runtime is clock-agnostic: callers pass the executing thread's current
// virtual cycle count and counter sample at every Enter/Leave, so the same
// runtime serves the execution simulator and unit tests alike.
package tau

import (
	"fmt"
	"strings"

	"perfknow/internal/counters"
	"perfknow/internal/perfdmf"
)

// Options configures a Profiler.
type Options struct {
	Threads       int     // number of threads (or MPI ranks) to profile
	ClockHz       float64 // cycles per second, for the TIME metric
	CallpathDepth int     // 0 = flat profile only; n>0 records callpaths up to n frames
}

// Profiler owns one ThreadProfile per thread.
type Profiler struct {
	opts    Options
	threads []*ThreadProfile
}

// NewProfiler creates a profiler for opts.Threads threads.
func NewProfiler(opts Options) *Profiler {
	if opts.Threads <= 0 {
		panic(fmt.Sprintf("tau: Threads must be positive, got %d", opts.Threads))
	}
	if opts.ClockHz <= 0 {
		panic(fmt.Sprintf("tau: ClockHz must be positive, got %g", opts.ClockHz))
	}
	p := &Profiler{opts: opts, threads: make([]*ThreadProfile, opts.Threads)}
	for i := range p.threads {
		p.threads[i] = &ThreadProfile{id: i, callpathDepth: opts.CallpathDepth, accums: make(map[string]*accum)}
	}
	return p
}

// Thread returns the profile for thread id.
func (p *Profiler) Thread(id int) *ThreadProfile {
	if id < 0 || id >= len(p.threads) {
		panic(fmt.Sprintf("tau: thread %d out of range [0,%d)", id, len(p.threads)))
	}
	return p.threads[id]
}

// Threads returns the thread count.
func (p *Profiler) Threads() int { return len(p.threads) }

// accum is the running total for one event on one thread.
type accum struct {
	calls   uint64
	inclCyc uint64
	exclCyc uint64
	incl    counters.Set
	excl    counters.Set
}

type frame struct {
	event    string
	path     string // callpath name at this depth ("" when not recorded)
	enterCyc uint64
	enter    counters.Set
	childCyc uint64
	child    counters.Set
}

// ThreadProfile records one thread's measurements.
type ThreadProfile struct {
	id            int
	callpathDepth int
	stack         []frame
	accums        map[string]*accum
	order         []string
}

// Depth returns the current timer-stack depth.
func (tp *ThreadProfile) Depth() int { return len(tp.stack) }

// Enter pushes an instrumented region. clock and cs are the thread's current
// virtual cycle count and counter sample.
func (tp *ThreadProfile) Enter(event string, clock uint64, cs counters.Set) {
	path := ""
	if tp.callpathDepth > 0 && len(tp.stack) > 0 && len(tp.stack) < tp.callpathDepth {
		parent := tp.stack[len(tp.stack)-1]
		prefix := parent.path
		if prefix == "" {
			prefix = parent.event
		}
		path = prefix + perfdmf.CallpathSeparator + event
	}
	tp.stack = append(tp.stack, frame{event: event, path: path, enterCyc: clock, enter: cs})
}

// Leave pops the current region, checking that it matches event, and charges
// the measured deltas: inclusive to the event, inclusive-minus-children to
// the event's exclusive, and the inclusive total to the parent's child
// accumulator.
func (tp *ThreadProfile) Leave(event string, clock uint64, cs counters.Set) {
	if len(tp.stack) == 0 {
		panic(fmt.Sprintf("tau: thread %d: Leave(%q) with empty timer stack", tp.id, event))
	}
	f := tp.stack[len(tp.stack)-1]
	tp.stack = tp.stack[:len(tp.stack)-1]
	if f.event != event {
		panic(fmt.Sprintf("tau: thread %d: Leave(%q) does not match open region %q", tp.id, event, f.event))
	}
	if clock < f.enterCyc {
		panic(fmt.Sprintf("tau: thread %d: clock moved backwards in %q (%d < %d)", tp.id, event, clock, f.enterCyc))
	}
	inclCyc := clock - f.enterCyc
	incl := cs.Delta(&f.enter)

	tp.charge(f.event, inclCyc, &incl, f.childCyc, &f.child)
	if f.path != "" {
		tp.charge(f.path, inclCyc, &incl, f.childCyc, &f.child)
	}

	if len(tp.stack) > 0 {
		parent := &tp.stack[len(tp.stack)-1]
		parent.childCyc += inclCyc
		parent.child.Add(&incl)
	}
}

func (tp *ThreadProfile) charge(name string, inclCyc uint64, incl *counters.Set, childCyc uint64, child *counters.Set) {
	a := tp.accums[name]
	if a == nil {
		a = &accum{}
		tp.accums[name] = a
		tp.order = append(tp.order, name)
	}
	a.calls++
	a.inclCyc += inclCyc
	a.incl.Add(incl)
	excl := incl.Delta(child)
	exclCyc := inclCyc - minU64(childCyc, inclCyc)
	a.exclCyc += exclCyc
	a.excl.Add(&excl)
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// InclusiveCycles returns the inclusive cycle total recorded for an event on
// this thread (0 if the event never completed).
func (tp *ThreadProfile) InclusiveCycles(event string) uint64 {
	if a := tp.accums[event]; a != nil {
		return a.inclCyc
	}
	return 0
}

// ExclusiveCycles returns the exclusive cycle total for an event.
func (tp *ThreadProfile) ExclusiveCycles(event string) uint64 {
	if a := tp.accums[event]; a != nil {
		return a.exclCyc
	}
	return 0
}

// Calls returns the completed call count for an event.
func (tp *ThreadProfile) Calls(event string) uint64 {
	if a := tp.accums[event]; a != nil {
		return a.calls
	}
	return 0
}

// AddExclusive charges extra cycles and counters directly to an event's
// inclusive and exclusive totals without a timer push/pop. The execution
// engine uses this to attribute runtime overheads (barrier wait, schedule
// dispatch, fork/join) to synthetic events such as "omp_barrier".
func (tp *ThreadProfile) AddExclusive(event string, cyc uint64, cs counters.Set) {
	a := tp.accums[event]
	if a == nil {
		a = &accum{}
		tp.accums[event] = a
		tp.order = append(tp.order, event)
		a.calls = 0
	}
	a.inclCyc += cyc
	a.exclCyc += cyc
	a.incl.Add(&cs)
	a.excl.Add(&cs)
}

// Trial assembles the per-thread accumulations into a perfdmf.Trial. Every
// counter that is non-zero anywhere becomes a metric, and cycle totals are
// additionally exported as the TIME metric in microseconds. It returns an
// error if any thread still has open timers.
func (p *Profiler) Trial(app, experiment, name string) (*perfdmf.Trial, error) {
	for _, tp := range p.threads {
		if len(tp.stack) != 0 {
			open := make([]string, len(tp.stack))
			for i, f := range tp.stack {
				open[i] = f.event
			}
			return nil, fmt.Errorf("tau: thread %d has open timers at snapshot: %s",
				tp.id, strings.Join(open, " > "))
		}
	}

	t := perfdmf.NewTrial(app, experiment, name, len(p.threads))
	t.AddMetric(perfdmf.TimeMetric)

	// Decide the metric list: any counter non-zero on any thread/event.
	var present [counters.NumIDs]bool
	for _, tp := range p.threads {
		for _, a := range tp.accums {
			for _, id := range a.incl.NonZero() {
				present[id] = true
			}
		}
	}
	for id := counters.ID(0); id < counters.NumIDs; id++ {
		if present[id] {
			t.AddMetric(id.Name())
		}
	}

	// Event order: union of per-thread orders, first-seen-first.
	seen := make(map[string]bool)
	var events []string
	for _, tp := range p.threads {
		for _, name := range tp.order {
			if !seen[name] {
				seen[name] = true
				events = append(events, name)
			}
		}
	}

	usecPerCyc := 1e6 / p.opts.ClockHz
	for _, ev := range events {
		e := t.EnsureEvent(ev)
		for th, tp := range p.threads {
			a := tp.accums[ev]
			if a == nil {
				continue
			}
			e.Calls[th] = float64(a.calls)
			e.SetValue(perfdmf.TimeMetric, th, float64(a.inclCyc)*usecPerCyc, float64(a.exclCyc)*usecPerCyc)
			for id := counters.ID(0); id < counters.NumIDs; id++ {
				if present[id] {
					e.SetValue(id.Name(), th, float64(a.incl.Get(id)), float64(a.excl.Get(id)))
				}
			}
		}
	}
	return t, nil
}
