package rules

// rete.go replaces per-cycle re-matching with a Rete-style network so
// firing cost scales with working-memory *deltas* instead of
// working-memory size: alpha memories hold the facts of each type in
// assertion order, beta join nodes hold partial matches (tokens) per rule
// per pattern level, and assert/retract incrementally extend or kill
// tokens. Complete tokens land on an agenda keyed exactly like the naive
// matcher's activations, and conflict resolution picks from the agenda
// with the same better() total order — so the firing order is reproduced
// exactly.
//
// Invariants that keep the network byte-identical to matchAll():
//
//   - Token identity is the tuple of positive-pattern fact IDs in pattern
//     order, so agenda keys (rule + "|" + tupleKey) match the naive keys
//     and the refraction memory works unchanged across engines.
//   - Negated/Exists patterns contribute no bindings and no tuple IDs: a
//     parent token tracks how many facts currently satisfy the pattern
//     (negMatches) and owns at most one pass-through child, created or
//     killed on the 0<->1 transitions.
//   - Pattern.match errors cannot be raised eagerly at assert time without
//     changing *which* error a Run reports (the naive matcher discovers
//     errors in deterministic rule/env/fact order). The network therefore
//     records the first error (net.err) and the engine falls back to the
//     naive matcher permanently for that engine — e.facts stays
//     authoritative, so results and error text are identical.
//   - A fact asserted while it extends one pattern of a rule must not also
//     join through tokens created by that same assertion (the classic
//     double-join hazard); tokens carry a birth epoch and an assertion
//     only extends tokens born before it.
//
// Network shape for a rule with patterns P0..Pn-1 (× = join on shared
// bindings via Pattern.match):
//
//	alpha[T0] ──┐
//	            ├─× root ─ mems[0] ──┐
//	alpha[T1] ──┼─────────×──────────┴─ mems[1] ── ... ── mems[n-1]
//	alpha[T2] ──┘                                            │
//	                                                      agenda

import "fmt"

type reteNet struct {
	ruleCount int
	nodes     []*rnode
	typeIndex map[string][]patRef
	alpha     map[string][]*Fact
	alphaPos  map[*Fact]int // fact's index within alpha[f.Type]
	agenda    map[string]*activation
	factToks  map[*Fact][]*rtoken
	epoch     int
	err       error // first deferred Pattern.match error
}

// patRef addresses one pattern position in one rule's network node.
type patRef struct {
	node *rnode
	j    int
}

// rnode is the per-rule beta network: the root pseudo-token plus one token
// memory per pattern level.
type rnode struct {
	rule  *Rule
	order int
	root  *rtoken
	mems  [][]*rtoken
}

// rtoken is a partial match of patterns 0..level (level -1 for the root).
//
// memIdx and childIdx record the token's position in node.mems[level] and
// parent.children so detaching is an O(1) swap-remove instead of a linear
// scan — retraction cost then tracks the delta, not the memory size. Those
// lists are therefore NOT in insertion order; nothing downstream depends on
// it (the agenda is a map resolved by better(), bindings are per-tuple, and
// a deferred match error only flips the engine to the naive matcher, which
// rediscovers the error in its own deterministic order).
type rtoken struct {
	node       *rnode
	parent     *rtoken
	fact       *Fact // positive-pattern anchor; nil for root and pass-through tokens
	env        Bindings
	ids        []int64
	level      int
	birth      int
	memIdx     int // index in node.mems[level]; -1 when detached or root
	childIdx   int // index in parent.children; -1 for root and pass-throughs
	negMatches int // matches of the NEXT pattern when it is Negated/Exists
	passChild  *rtoken
	children   []*rtoken
	actKey     string // agenda key when this token is a complete activation
	dead       bool
}

func buildNet(rules []*Rule) *reteNet {
	n := &reteNet{
		ruleCount: len(rules),
		typeIndex: make(map[string][]patRef),
		alpha:     make(map[string][]*Fact),
		alphaPos:  make(map[*Fact]int),
		agenda:    make(map[string]*activation),
		factToks:  make(map[*Fact][]*rtoken),
	}
	for ri, r := range rules {
		node := &rnode{
			rule:  r,
			order: ri,
			mems:  make([][]*rtoken, len(r.Patterns)),
		}
		node.root = &rtoken{node: node, env: Bindings{}, level: -1, memIdx: -1, childIdx: -1}
		for j := range r.Patterns {
			n.typeIndex[r.Patterns[j].Type] = append(n.typeIndex[r.Patterns[j].Type], patRef{node: node, j: j})
		}
		n.nodes = append(n.nodes, node)
	}
	return n
}

func (n *reteNet) fail(err error, r *Rule) {
	if n.err == nil {
		n.err = fmt.Errorf("rules: rule %q: %w", r.Name, err)
	}
}

// parents returns the token memory feeding pattern j.
func (n *reteNet) parents(node *rnode, j int) []*rtoken {
	if j == 0 {
		return []*rtoken{node.root}
	}
	return node.mems[j-1]
}

// assert feeds a newly asserted fact through every pattern position of its
// type: positive patterns join it against existing parent tokens, and
// Negated/Exists patterns bump the counters of parent tokens it satisfies.
func (n *reteNet) assert(f *Fact) {
	n.alphaPos[f] = len(n.alpha[f.Type])
	n.alpha[f.Type] = append(n.alpha[f.Type], f)
	n.epoch++
	for _, pr := range n.typeIndex[f.Type] {
		p := &pr.node.rule.Patterns[pr.j]
		for _, t := range n.parents(pr.node, pr.j) {
			if t.dead || t.birth >= n.epoch {
				continue // tokens born from this very assertion already saw f
			}
			if p.Negated || p.Exists {
				_, ok, err := p.match(f, t.env)
				if err != nil {
					n.fail(err, pr.node.rule)
					continue
				}
				if !ok {
					continue
				}
				t.negMatches++
				if t.negMatches == 1 {
					if p.Negated {
						if t.passChild != nil {
							n.kill(t.passChild)
							t.passChild = nil
						}
					} else if t.passChild == nil {
						n.makePass(t, pr.j)
					}
				}
				continue
			}
			env, ok, err := p.match(f, t.env)
			if err != nil {
				n.fail(err, pr.node.rule)
				continue
			}
			if ok {
				n.extend(t, pr.j, f, env)
			}
		}
	}
}

// retract removes a fact: tokens anchored on it die (with their subtrees),
// and Negated/Exists counters it contributed to are decremented, toggling
// pass-through children on the 1->0 transitions.
func (n *reteNet) retract(f *Fact) {
	i, found := n.alphaPos[f]
	if !found {
		return // never asserted (or already retracted): nothing to undo
	}
	list := n.alpha[f.Type]
	if last := len(list) - 1; i != last {
		list[i] = list[last]
		n.alphaPos[list[i]] = i
	}
	n.alpha[f.Type] = list[:len(list)-1]
	delete(n.alphaPos, f)
	// Snapshot and drop the anchor list first: kill() edits factToks
	// entries, and mutating the slice mid-range would skip tokens.
	toks := n.factToks[f]
	delete(n.factToks, f)
	for _, t := range toks {
		if !t.dead {
			childDetach(t)
			n.kill(t)
		}
	}
	for _, pr := range n.typeIndex[f.Type] {
		p := &pr.node.rule.Patterns[pr.j]
		if !p.Negated && !p.Exists {
			continue
		}
		for _, t := range n.parents(pr.node, pr.j) {
			if t.dead {
				continue
			}
			_, ok, err := p.match(f, t.env)
			if err != nil {
				n.fail(err, pr.node.rule)
				continue
			}
			if !ok {
				continue
			}
			t.negMatches--
			if t.negMatches == 0 {
				if p.Negated {
					n.makePass(t, pr.j)
				} else if t.passChild != nil {
					n.kill(t.passChild)
					t.passChild = nil
				}
			}
		}
	}
}

// extend creates the token joining parent t with fact f at pattern j and
// propagates it through the remaining patterns.
func (n *reteNet) extend(t *rtoken, j int, f *Fact, env Bindings) {
	ids := make([]int64, len(t.ids)+1)
	copy(ids, t.ids)
	ids[len(t.ids)] = f.id
	child := &rtoken{
		node:     t.node,
		parent:   t,
		fact:     f,
		env:      env,
		ids:      ids,
		level:    j,
		birth:    n.epoch,
		memIdx:   len(t.node.mems[j]),
		childIdx: len(t.children),
	}
	t.children = append(t.children, child)
	t.node.mems[j] = append(t.node.mems[j], child)
	n.factToks[f] = append(n.factToks[f], child)
	n.propagate(child)
}

// makePass creates the pass-through token for a satisfied Negated/Exists
// pattern: same bindings, same tuple IDs, one level deeper.
func (n *reteNet) makePass(t *rtoken, j int) {
	child := &rtoken{
		node:     t.node,
		parent:   t,
		env:      t.env,
		ids:      t.ids,
		level:    j,
		birth:    n.epoch,
		memIdx:   len(t.node.mems[j]),
		childIdx: -1, // pass-throughs live in passChild, not children
	}
	t.passChild = child
	t.node.mems[j] = append(t.node.mems[j], child)
	n.propagate(child)
}

// propagate pushes a fresh token through the patterns after its level,
// scanning the alpha memories: positive patterns fan out into joins,
// Negated/Exists patterns seed the counter and maybe a pass-through child,
// and a token past the last pattern becomes an activation.
func (n *reteNet) propagate(t *rtoken) {
	r := t.node
	j := t.level + 1
	if j == len(r.rule.Patterns) {
		if j > 0 { // a rule with no patterns never fires
			n.complete(t)
		}
		return
	}
	p := &r.rule.Patterns[j]
	if p.Negated || p.Exists {
		count := 0
		for _, f := range n.alpha[p.Type] {
			_, ok, err := p.match(f, t.env)
			if err != nil {
				n.fail(err, r.rule)
				continue
			}
			if ok {
				count++
			}
		}
		t.negMatches = count
		if (p.Negated && count == 0) || (p.Exists && count > 0) {
			n.makePass(t, j)
		}
		return
	}
	for _, f := range n.alpha[p.Type] {
		env, ok, err := p.match(f, t.env)
		if err != nil {
			n.fail(err, r.rule)
			continue
		}
		if ok {
			n.extend(t, j, f, env)
		}
	}
}

// complete puts a fully matched token on the agenda under the same key the
// naive matcher would compute.
func (n *reteNet) complete(t *rtoken) {
	key := t.node.rule.Name + "|" + tupleKey(t.ids)
	t.actKey = key
	n.agenda[key] = &activation{
		rule:     t.node.rule,
		bindings: t.env,
		key:      key,
		order:    t.node.order,
	}
}

// kill marks a token subtree dead, removing every token from its memory
// and its activation (if complete) from the agenda.
func (n *reteNet) kill(t *rtoken) {
	if t.dead {
		return
	}
	t.dead = true
	memDetach(t)
	if t.actKey != "" {
		delete(n.agenda, t.actKey)
	}
	if t.fact != nil {
		if toks, ok := n.factToks[t.fact]; ok {
			for i, x := range toks {
				if x == t {
					n.factToks[t.fact] = append(toks[:i], toks[i+1:]...)
					break
				}
			}
		}
	}
	for _, c := range t.children {
		n.kill(c)
	}
	t.children = nil
	if t.passChild != nil {
		n.kill(t.passChild)
		t.passChild = nil
	}
}

// memDetach swap-removes t from its token memory in O(1) via memIdx.
func memDetach(t *rtoken) {
	if t.memIdx < 0 {
		return
	}
	list := t.node.mems[t.level]
	if last := len(list) - 1; t.memIdx != last {
		list[t.memIdx] = list[last]
		list[t.memIdx].memIdx = t.memIdx
	}
	t.node.mems[t.level] = list[:len(list)-1]
	t.memIdx = -1
}

// childDetach swap-removes t from its parent's children in O(1) via
// childIdx. Called only on retraction; a dying parent instead drops the
// whole children slice in kill().
func childDetach(t *rtoken) {
	if t.childIdx < 0 || t.parent == nil {
		return
	}
	list := t.parent.children
	if last := len(list) - 1; t.childIdx != last {
		list[t.childIdx] = list[last]
		list[t.childIdx].childIdx = t.childIdx
	}
	t.parent.children = list[:len(list)-1]
	t.childIdx = -1
}
