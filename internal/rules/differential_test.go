package rules

// Differential tests: every scenario runs against two engines fed the
// identical rule base and the identical assert/retract/Run sequence — one
// using the Rete network (default), one forced naive (Naive=true). Results
// (output lines, recommendations, firing log), errors and final working
// memory must match exactly. A seeded generator adds random rule bases and
// random fact churn on top of the handwritten corpus.

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// enginePair drives a Rete engine and a naive engine in lockstep.
type enginePair struct {
	t     *testing.T
	rete  *Engine
	naive *Engine
	// parallel fact handles so retracts hit the corresponding fact
	reteFacts  []*Fact
	naiveFacts []*Fact
}

func newPair(t *testing.T) *enginePair {
	t.Helper()
	p := &enginePair{t: t, rete: NewEngine(), naive: NewEngine()}
	p.naive.Naive = true
	return p
}

func (p *enginePair) load(src string) {
	p.t.Helper()
	if err := p.rete.LoadString(src); err != nil {
		p.t.Fatal(err)
	}
	if err := p.naive.LoadString(src); err != nil {
		p.t.Fatal(err)
	}
}

func (p *enginePair) addRule(r Rule) {
	p.rete.AddRule(r)
	p.naive.AddRule(r)
}

func (p *enginePair) assert(factType string, fields map[string]any) {
	p.reteFacts = append(p.reteFacts, p.rete.Assert(NewFact(factType, fields)))
	p.naiveFacts = append(p.naiveFacts, p.naive.Assert(NewFact(factType, fields)))
}

func (p *enginePair) retract(i int) {
	p.rete.Retract(p.reteFacts[i])
	p.naive.Retract(p.naiveFacts[i])
}

// run executes both engines and asserts identical results, errors and
// working memory.
func (p *enginePair) run() {
	p.t.Helper()
	rres, rerr := p.rete.Run()
	nres, nerr := p.naive.Run()
	rs, ns := errText(rerr), errText(nerr)
	if rs != ns {
		p.t.Fatalf("error mismatch\nrete:  %q\nnaive: %q", rs, ns)
	}
	if rerr != nil {
		return
	}
	if !reflect.DeepEqual(rres.Output, nres.Output) {
		p.t.Fatalf("output mismatch\nrete:  %q\nnaive: %q", rres.Output, nres.Output)
	}
	if !reflect.DeepEqual(rres.Recommendations, nres.Recommendations) {
		p.t.Fatalf("recommendations mismatch\nrete:  %v\nnaive: %v", rres.Recommendations, nres.Recommendations)
	}
	if !reflect.DeepEqual(rres.Fired, nres.Fired) {
		p.t.Fatalf("firing log mismatch\nrete:  %v\nnaive: %v", rres.Fired, nres.Fired)
	}
	rf, nf := factDump(p.rete), factDump(p.naive)
	if !reflect.DeepEqual(rf, nf) {
		p.t.Fatalf("working memory mismatch\nrete:  %v\nnaive: %v", rf, nf)
	}
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func factDump(e *Engine) []string {
	var out []string
	for _, f := range e.Facts() {
		var fields []string
		for k, v := range f.Fields {
			fields = append(fields, fmt.Sprintf("%s=%v", k, v))
		}
		strings.Join(fields, ",")
		out = append(out, fmt.Sprintf("%s{%s}#%d", f.Type, sortedJoin(fields), f.id))
	}
	return out
}

func sortedJoin(parts []string) string {
	s := append([]string(nil), parts...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return strings.Join(s, ",")
}

func TestDifferentialJoinAndSalience(t *testing.T) {
	p := newPair(t)
	p.load(`
rule "Imbalance" salience 5
when
    e : Event ( n : name, ratio > 0.25 )
then
    println("imbalance " + n)
end
rule "Correlate"
when
    Event ( n : name, ratio > 0.25 )
    Inner ( event == n, v : value )
then
    recommend("corr", "event " + n + " value " + v)
end
`)
	for i := 0; i < 8; i++ {
		p.assert("Event", map[string]any{"name": fmt.Sprintf("e%d", i), "ratio": 0.1 * float64(i)})
		p.assert("Inner", map[string]any{"event": fmt.Sprintf("e%d", i), "value": i * i})
	}
	p.run()
	// More facts after a run: refraction keeps old firings, new ones fire.
	p.assert("Event", map[string]any{"name": "late", "ratio": 0.9})
	p.assert("Inner", map[string]any{"event": "late", "value": 99})
	p.run()
}

func TestDifferentialNegationToggles(t *testing.T) {
	p := newPair(t)
	p.load(`
rule "NoPartner"
when
    e : Event ( n : name )
    not Partner ( event == n )
then
    println("lonely " + n)
end
`)
	p.assert("Event", map[string]any{"name": "a"})
	p.assert("Event", map[string]any{"name": "b"})
	p.assert("Partner", map[string]any{"event": "b"})
	p.run()
	// Retract the partner: "b" becomes lonely; assert one for "a".
	p.retract(2)
	p.assert("Partner", map[string]any{"event": "a"})
	p.run()
}

func TestDifferentialExistsFiresOnce(t *testing.T) {
	p := newPair(t)
	p.load(`
rule "AnyHot"
when
    m : Machine ( h : host )
    exists Reading ( host == h, temp > 90 )
then
    println("hot host " + h)
end
`)
	p.assert("Machine", map[string]any{"host": "n1"})
	for i := 0; i < 5; i++ {
		p.assert("Reading", map[string]any{"host": "n1", "temp": 91 + i})
	}
	p.run()
	// Retract all but one hot reading: still exactly one (already fired).
	p.retract(1)
	p.retract(2)
	p.run()
	// Retract the rest, then re-add: new tuple key? Exists contributes no
	// IDs, so the reactivation has the same key and refraction holds.
	p.retract(3)
	p.retract(4)
	p.retract(5)
	p.run()
	p.assert("Reading", map[string]any{"host": "n1", "temp": 99})
	p.run()
}

func TestDifferentialRetractingConsequence(t *testing.T) {
	p := newPair(t)
	p.load(`
rule "Consume" salience 10
when
    j : Job ( state == "ready" )
then
    println("consume")
    retract j
    assert Done ( ok = true )
end
rule "CountDone"
when
    exists Done ( ok == true )
then
    println("some job finished")
end
`)
	for i := 0; i < 4; i++ {
		p.assert("Job", map[string]any{"state": "ready"})
	}
	p.run()
}

func TestDifferentialChainedAssertions(t *testing.T) {
	p := newPair(t)
	p.load(`
rule "Derive" salience 1
when
    s : Sample ( v : value > 10 )
then
    assert Derived ( doubled = v * 2 )
end
rule "Report"
when
    d : Derived ( x : doubled )
then
    println("derived " + x)
end
`)
	p.assert("Sample", map[string]any{"value": 5})
	p.assert("Sample", map[string]any{"value": 15})
	p.assert("Sample", map[string]any{"value": 25})
	p.run()
}

func TestDifferentialRulesAddedBetweenRuns(t *testing.T) {
	p := newPair(t)
	p.load(`
rule "First"
when
    Event ( kind == "x" )
then
    println("first")
end
`)
	p.assert("Event", map[string]any{"kind": "x"})
	p.run()
	// The Rete network must rebuild when the rule base grows.
	p.load(`
rule "Second"
when
    e : Event ( k : kind )
then
    println("second " + k)
end
`)
	p.run()
}

func TestDifferentialResetReuse(t *testing.T) {
	p := newPair(t)
	p.load(`
rule "R"
when
    Event ( v : value > 0 )
then
    println("v=" + v)
end
`)
	p.assert("Event", map[string]any{"value": 3})
	p.run()
	p.rete.Reset()
	p.naive.Reset()
	p.reteFacts, p.naiveFacts = nil, nil
	p.assert("Event", map[string]any{"value": 7})
	p.run()
}

func TestDifferentialMatchErrorParity(t *testing.T) {
	// An unbound fact variable inside a constraint RHS errors at match
	// time; the Rete engine must surface exactly the naive error.
	p := newPair(t)
	p.addRule(Rule{
		Name: "BadRef",
		Patterns: []Pattern{{
			Type: "Event",
			Constraints: []Constraint{{
				Field: "value", Op: "==",
				RHS: FieldRef{Binding: "nosuch", Field: "x"},
			}},
		}},
		Consequences: []Consequence{Println{Arg: Lit{V: "never"}}},
	})
	p.assert("Event", map[string]any{"value": 1})
	p.run()
}

func TestDifferentialRunawayParity(t *testing.T) {
	p := newPair(t)
	p.rete.MaxCycles = 50
	p.naive.MaxCycles = 50
	p.load(`
rule "Loop"
when
    exists Seed ( on == true )
then
    assert Seed ( on = true )
end
`)
	p.assert("Seed", map[string]any{"on": true})
	p.run() // both must report the same no-quiescence error
}

// --- randomized sequences ------------------------------------------------

type ruleGen struct{ r *rand.Rand }

var genTypes = []string{"A", "B", "C"}

func (g *ruleGen) fields() map[string]any {
	return map[string]any{
		"x":   g.r.Intn(4),
		"y":   g.r.Intn(3),
		"tag": fmt.Sprintf("t%d", g.r.Intn(3)),
	}
}

// rule builds a random 1-3 pattern rule joining on x, with occasional
// negation/exists, salience, and println/recommend/assert consequences.
func (g *ruleGen) rule(i int) Rule {
	n := 1 + g.r.Intn(3)
	ru := Rule{Name: fmt.Sprintf("R%02d", i), Salience: g.r.Intn(3)}
	joinVar := ""
	for pi := 0; pi < n; pi++ {
		p := Pattern{Type: genTypes[g.r.Intn(len(genTypes))]}
		if pi > 0 && g.r.Intn(3) == 0 {
			if g.r.Intn(2) == 0 {
				p.Negated = true
			} else {
				p.Exists = true
			}
		}
		if !p.Negated && !p.Exists && g.r.Intn(2) == 0 {
			p.Binding = fmt.Sprintf("f%d", pi)
		}
		switch g.r.Intn(3) {
		case 0: // constant test
			p.Constraints = append(p.Constraints, Constraint{
				Field: "x", Op: []string{"==", ">", "<", "!="}[g.r.Intn(4)],
				RHS: Lit{V: g.r.Intn(4)},
			})
		case 1: // bind (and maybe test)
			c := Constraint{Field: "x", BindVar: fmt.Sprintf("v%d", pi)}
			if joinVar == "" && !p.Negated && !p.Exists {
				joinVar = c.BindVar
			}
			if g.r.Intn(2) == 0 {
				c.Op, c.RHS = ">=", Lit{V: 1}
			}
			p.Constraints = append(p.Constraints, c)
		default: // join against an earlier binding when one exists
			if joinVar != "" {
				p.Constraints = append(p.Constraints, Constraint{
					Field: "x", Op: "==", RHS: VarRef{Name: joinVar},
				})
			} else {
				p.Constraints = append(p.Constraints, Constraint{
					Field: "y", Op: "<", RHS: Lit{V: 2},
				})
			}
		}
		ru.Patterns = append(ru.Patterns, p)
	}
	switch g.r.Intn(3) {
	case 0:
		ru.Consequences = []Consequence{Println{Arg: Lit{V: ru.Name + " fired"}}}
	case 1:
		ru.Consequences = []Consequence{Recommend{
			Category: Lit{V: "cat"},
			Text:     Lit{V: ru.Name},
		}}
	default:
		ru.Consequences = []Consequence{
			Println{Arg: Lit{V: ru.Name}},
			AssertFact{Type: "D", Fields: map[string]Expr{"src": Lit{V: ru.Name}}},
		}
	}
	return ru
}

func TestDifferentialRandomSequences(t *testing.T) {
	const seeds = 60
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(seed)))
			g := &ruleGen{r: r}
			p := newPair(t)
			nRules := 1 + r.Intn(4)
			for i := 0; i < nRules; i++ {
				p.addRule(g.rule(i))
			}
			// A sink rule over the fact type asserted by consequences, so
			// chained assertions feed back into matching.
			p.addRule(Rule{
				Name:     "Sink",
				Patterns: []Pattern{{Type: "D", Constraints: []Constraint{{Field: "src", BindVar: "s"}}}},
				Consequences: []Consequence{
					Println{Arg: Binary{Op: "+", L: Lit{V: "sink:"}, R: VarRef{Name: "s"}}},
				},
			})
			ops := 15 + r.Intn(25)
			for o := 0; o < ops; o++ {
				switch {
				case len(p.reteFacts) > 3 && r.Intn(5) == 0:
					p.retract(r.Intn(len(p.reteFacts)))
				case r.Intn(8) == 0:
					p.run()
				default:
					p.assert(genTypes[r.Intn(len(genTypes))], g.fields())
				}
			}
			p.run()
			// Churn after quiescence, then run again.
			for o := 0; o < 6; o++ {
				if len(p.reteFacts) > 0 && o%2 == 0 {
					p.retract(r.Intn(len(p.reteFacts)))
				} else {
					p.assert(genTypes[r.Intn(len(genTypes))], g.fields())
				}
			}
			p.run()
		})
	}
}
