// Package rules is a forward-chaining inference engine in the style of the
// JBoss Rules (Drools) system the paper embeds in PerfExplorer: facts with
// named fields live in a working memory, rules declare "when" patterns over
// fact types with field constraints and variable bindings (joins across
// facts included), and "then" consequences that print explanations, assert
// or retract facts, and emit recommendations. Rules may be constructed
// programmatically or parsed from .prl files whose syntax mirrors the .drl
// fragment in Fig. 2 of the paper.
package rules

import (
	"fmt"
	"strings"
)

// Fact is one working-memory element: a type name plus named fields.
// Field values are float64, string or bool (integers are coerced to
// float64 at assertion time).
type Fact struct {
	Type   string
	Fields map[string]any

	id int64 // assigned by the engine at assertion
}

// NewFact builds a fact, copying and normalizing the field map.
func NewFact(factType string, fields map[string]any) *Fact {
	f := &Fact{Type: factType, Fields: make(map[string]any, len(fields))}
	for k, v := range fields {
		f.Fields[k] = normalize(v)
	}
	return f
}

func normalize(v any) any {
	switch x := v.(type) {
	case int:
		return float64(x)
	case int32:
		return float64(x)
	case int64:
		return float64(x)
	case uint64:
		return float64(x)
	case float32:
		return float64(x)
	case float64, string, bool, nil:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Get returns a field value.
func (f *Fact) Get(field string) (any, bool) {
	v, ok := f.Fields[field]
	return v, ok
}

// String renders the fact for explanations and debugging.
func (f *Fact) String() string {
	var parts []string
	for k, v := range f.Fields {
		parts = append(parts, fmt.Sprintf("%s=%v", k, v))
	}
	return f.Type + "(" + strings.Join(parts, ", ") + ")"
}

// Bindings is the variable environment accumulated while matching a rule's
// patterns; consequences evaluate under it.
type Bindings map[string]any

func (b Bindings) clone() Bindings {
	out := make(Bindings, len(b)+2)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Expr is an expression usable as a constraint right-hand side or inside a
// consequence: literals, variable references, field access on bound facts,
// and arithmetic / concatenation.
type Expr interface {
	Eval(b Bindings) (any, error)
}

// Lit is a literal value.
type Lit struct{ V any }

// Eval returns the literal.
func (l Lit) Eval(Bindings) (any, error) { return normalize(l.V), nil }

// VarRef references a bound variable. An unbound identifier evaluates to
// its own name as a string, which is how bare enum-like constants (HIGHER,
// LOWER) work in rule files.
type VarRef struct{ Name string }

// Eval resolves the variable.
func (v VarRef) Eval(b Bindings) (any, error) {
	if val, ok := b[v.Name]; ok {
		if f, isFact := val.(*Fact); isFact {
			return f, nil
		}
		return val, nil
	}
	return v.Name, nil
}

// FieldRef accesses binding.field where binding names a matched fact.
type FieldRef struct{ Binding, Field string }

// Eval resolves the field on the bound fact.
func (fr FieldRef) Eval(b Bindings) (any, error) {
	v, ok := b[fr.Binding]
	if !ok {
		return nil, fmt.Errorf("rules: unbound fact variable %q", fr.Binding)
	}
	f, ok := v.(*Fact)
	if !ok {
		return nil, fmt.Errorf("rules: %q is not a fact binding", fr.Binding)
	}
	val, ok := f.Get(fr.Field)
	if !ok {
		return nil, fmt.Errorf("rules: fact %s has no field %q", f.Type, fr.Field)
	}
	return val, nil
}

// Binary applies an arithmetic operator; "+" concatenates when either side
// is a string.
type Binary struct {
	Op   string // + - * /
	L, R Expr
}

// Eval computes the binary operation.
func (bin Binary) Eval(b Bindings) (any, error) {
	l, err := bin.L.Eval(b)
	if err != nil {
		return nil, err
	}
	r, err := bin.R.Eval(b)
	if err != nil {
		return nil, err
	}
	if bin.Op == "+" {
		if ls, ok := l.(string); ok {
			return ls + toString(r), nil
		}
		if rs, ok := r.(string); ok {
			return toString(l) + rs, nil
		}
	}
	lf, lok := toNumber(l)
	rf, rok := toNumber(r)
	if !lok || !rok {
		return nil, fmt.Errorf("rules: operator %q needs numeric operands, got %T and %T", bin.Op, l, r)
	}
	switch bin.Op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return 0.0, nil
		}
		return lf / rf, nil
	}
	return nil, fmt.Errorf("rules: unknown operator %q", bin.Op)
}

func toNumber(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func toString(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return trimFloat(x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case *Fact:
		return x.String()
	case nil:
		return "nil"
	}
	return fmt.Sprintf("%v", v)
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.6g", f)
	return s
}

// compare applies a comparison operator to two normalized values. Numbers
// compare numerically, strings lexically, booleans by equality only.
func compare(op string, l, r any) (bool, error) {
	if lf, lok := toNumber(l); lok {
		if rf, rok := toNumber(r); rok {
			switch op {
			case "==":
				return lf == rf, nil
			case "!=":
				return lf != rf, nil
			case ">":
				return lf > rf, nil
			case "<":
				return lf < rf, nil
			case ">=":
				return lf >= rf, nil
			case "<=":
				return lf <= rf, nil
			}
			return false, fmt.Errorf("rules: unknown comparison %q", op)
		}
	}
	ls, rs := toString(l), toString(r)
	switch op {
	case "==":
		return ls == rs, nil
	case "!=":
		return ls != rs, nil
	case ">":
		return ls > rs, nil
	case "<":
		return ls < rs, nil
	case ">=":
		return ls >= rs, nil
	case "<=":
		return ls <= rs, nil
	case "contains":
		return strings.Contains(ls, rs), nil
	}
	return false, fmt.Errorf("rules: unknown comparison %q", op)
}

// Constraint is one clause inside a pattern:
//
//	field == expr          (test)
//	v : field              (pure binding)
//	v : field > expr       (binding + test)
type Constraint struct {
	Field   string
	BindVar string // "" when no binding
	Op      string // "" for pure bindings
	RHS     Expr   // nil for pure bindings
}

// Pattern matches one fact of a given type, optionally binding it to a
// variable, under a conjunction of constraints. Negated patterns match when
// no such fact exists; Exists patterns match when at least one does but
// contribute no bindings (and the rule fires once regardless of how many
// facts satisfy them).
type Pattern struct {
	Binding     string // fact-level binding ("f : MeanEventFact(...)"), may be ""
	Type        string
	Constraints []Constraint
	Negated     bool
	Exists      bool
}

// match tests the pattern against one fact under env, returning the
// extended bindings on success.
func (p *Pattern) match(f *Fact, env Bindings) (Bindings, bool, error) {
	if f.Type != p.Type {
		return nil, false, nil
	}
	out := env.clone()
	if p.Binding != "" {
		if prev, ok := out[p.Binding]; ok {
			if prevFact, isFact := prev.(*Fact); !isFact || prevFact != f {
				return nil, false, nil
			}
		}
		out[p.Binding] = f
	}
	for _, c := range p.Constraints {
		val, ok := f.Get(c.Field)
		if !ok {
			return nil, false, nil // missing field: pattern does not match
		}
		if c.Op != "" {
			rhs, err := c.RHS.Eval(out)
			if err != nil {
				return nil, false, err
			}
			pass, err := compare(c.Op, val, rhs)
			if err != nil {
				return nil, false, err
			}
			if !pass {
				return nil, false, nil
			}
		}
		if c.BindVar != "" {
			if prev, bound := out[c.BindVar]; bound {
				eq, err := compare("==", prev, val)
				if err != nil || !eq {
					return nil, false, err
				}
			} else {
				out[c.BindVar] = val
			}
		}
	}
	return out, true, nil
}

// Consequence is one statement in a rule's then-block.
type Consequence interface {
	Execute(ctx *Context) error
}

// Println prints an explanation line to the engine output.
type Println struct{ Arg Expr }

// Execute appends the evaluated line to the run output.
func (p Println) Execute(ctx *Context) error {
	v, err := p.Arg.Eval(ctx.Bindings)
	if err != nil {
		return err
	}
	ctx.Engine.addOutput(toString(v))
	return nil
}

// AssertFact asserts a new fact built from field expressions.
type AssertFact struct {
	Type   string
	Fields map[string]Expr
}

// Execute asserts the constructed fact into working memory.
func (a AssertFact) Execute(ctx *Context) error {
	fields := make(map[string]any, len(a.Fields))
	for k, e := range a.Fields {
		v, err := e.Eval(ctx.Bindings)
		if err != nil {
			return err
		}
		fields[k] = v
	}
	ctx.Engine.Assert(NewFact(a.Type, fields))
	return nil
}

// RetractFact retracts the fact bound to a variable.
type RetractFact struct{ Binding string }

// Execute removes the bound fact from working memory.
func (r RetractFact) Execute(ctx *Context) error {
	v, ok := ctx.Bindings[r.Binding]
	if !ok {
		return fmt.Errorf("rules: retract of unbound variable %q", r.Binding)
	}
	f, ok := v.(*Fact)
	if !ok {
		return fmt.Errorf("rules: retract of non-fact %q", r.Binding)
	}
	ctx.Engine.Retract(f)
	return nil
}

// Recommend emits a structured recommendation (category, text).
type Recommend struct{ Category, Text Expr }

// Execute appends the recommendation to the run result.
func (r Recommend) Execute(ctx *Context) error {
	cat, err := r.Category.Eval(ctx.Bindings)
	if err != nil {
		return err
	}
	text, err := r.Text.Eval(ctx.Bindings)
	if err != nil {
		return err
	}
	ctx.Engine.addRecommendation(Recommendation{
		Rule:     ctx.Rule.Name,
		Category: toString(cat),
		Text:     toString(text),
	})
	return nil
}

// Rule couples a pattern conjunction with consequences. Action, when
// non-nil, runs instead of Consequences (programmatic rules).
type Rule struct {
	Name         string
	Salience     int
	Patterns     []Pattern
	Consequences []Consequence
	Action       func(ctx *Context) error
}

// Context is passed to firing consequences.
type Context struct {
	Engine   *Engine
	Rule     *Rule
	Bindings Bindings
}

// Recommendation is a structured suggestion produced by a fired rule,
// the "user recommendations" output of Fig. 3.
type Recommendation struct {
	Rule     string
	Category string
	Text     string
}
