package rules

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// Standing drives a long-lived Engine for continuous diagnosis: instead of
// one Run over a fully asserted working memory, the caller asserts and
// retracts facts as the observed system changes and calls Step after each
// batch of changes. Step fires whatever new activations those changes
// produced — and only those, because the Rete network updates match state
// incrementally on Assert/Retract and the refraction memory suppresses
// everything that already fired — then returns one Firing per rule
// execution with exactly the output that firing produced.
//
// Standing assumes the single-actor discipline the engine's
// match-resolve-act loop already requires: one goroutine calls
// Assert/Retract/Step (the stream registry serializes per stream).
type Standing struct {
	e *Engine

	// firedHighWater triggers refraction pruning: retracted facts leave
	// dead entries in the engine's fired map, and a stream that runs for
	// days would otherwise grow it without bound.
	firedHighWater int
}

// Firing is one standing-rule execution: the delta of a single activation.
type Firing struct {
	Rule            string
	Output          []string
	Recommendations []Recommendation
}

// NewStanding wraps an engine (typically freshly loaded with a rule base)
// for standing use.
func NewStanding(e *Engine) *Standing {
	return &Standing{e: e, firedHighWater: 4096}
}

// Engine exposes the wrapped engine for Assert/Retract.
func (s *Standing) Engine() *Engine { return s.e }

// Step runs the match-resolve-act loop to quiescence and returns the
// firings it performed, each carrying only the output lines and
// recommendations that that firing appended. The engine's result
// accumulators are drained afterwards so a long-lived engine stays
// bounded; refraction memory is kept (minus entries for retracted facts)
// so nothing ever fires twice for the same fact tuple.
func (s *Standing) Step(ctx context.Context) ([]Firing, error) {
	e := s.e
	var firings []Firing
	for cycle := 0; ; cycle++ {
		if cycle >= e.MaxCycles {
			return firings, fmt.Errorf("rules: no quiescence after %d cycles (rule loop?)", e.MaxCycles)
		}
		next, err := e.selectActivation()
		if err != nil {
			return firings, err
		}
		if next == nil {
			break
		}
		outBase, recBase := e.resultLens()
		if err := e.fireOne(ctx, next); err != nil {
			return firings, err
		}
		out, recs := e.resultsSince(outBase, recBase)
		firings = append(firings, Firing{Rule: next.rule.Name, Output: out, Recommendations: recs})
	}
	e.drainResults()
	if len(e.fired) > s.firedHighWater {
		s.pruneRefraction()
	}
	return firings, nil
}

// resultLens snapshots the output/recommendation accumulator lengths.
func (e *Engine) resultLens() (int, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.output), len(e.recommendations)
}

// resultsSince copies the accumulator tails appended after the snapshot.
func (e *Engine) resultsSince(outBase, recBase int) ([]string, []Recommendation) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	if len(e.output) > outBase {
		out = append(out, e.output[outBase:]...)
	}
	var recs []Recommendation
	if len(e.recommendations) > recBase {
		recs = append(recs, e.recommendations[recBase:]...)
	}
	return out, recs
}

// drainResults clears the result accumulators (output, recommendations,
// fired log) without touching working memory or refraction state.
func (e *Engine) drainResults() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.output = nil
	e.recommendations = nil
	e.firedLog = nil
}

// pruneRefraction drops refraction entries whose fact tuples contain a
// retracted fact. Fact ids are issued monotonically and never reused, so a
// tuple with a dead id can never reactivate — forgetting that it fired is
// safe and keeps the map proportional to live activations.
func (s *Standing) pruneRefraction() {
	e := s.e
	e.mu.Lock()
	defer e.mu.Unlock()
	live := make(map[string]struct{}, len(e.facts))
	for _, f := range e.facts {
		live[strconv.FormatInt(f.id, 10)] = struct{}{}
	}
	for key := range e.fired {
		bar := strings.IndexByte(key, '|')
		if bar < 0 {
			continue
		}
		for _, id := range strings.Split(key[bar+1:], ",") {
			if _, ok := live[id]; !ok {
				delete(e.fired, key)
				break
			}
		}
	}
}
