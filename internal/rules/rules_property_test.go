package rules

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestFiringCountMatchesQualifyingFacts: for a single-pattern rule, the
// number of firings equals exactly the number of facts satisfying the
// constraint, regardless of assertion order, and re-running fires nothing
// new (refraction).
func TestFiringCountMatchesQualifyingFacts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 25; round++ {
		e := NewEngine()
		if err := e.LoadString(`
rule "hot"
when f : Sample ( v : value > 50 )
then println("hot " + v) end
`); err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(40)
		want := 0
		for i := 0; i < n; i++ {
			v := float64(rng.Intn(100))
			if v > 50 {
				want++
			}
			e.Assert(NewFact("Sample", map[string]any{"value": v, "id": float64(i)}))
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Fired) != want {
			t.Fatalf("round %d: fired %d, want %d", round, len(res.Fired), want)
		}
		res2, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res2.Fired) != want {
			t.Fatalf("round %d: refiring occurred (%d vs %d)", round, len(res2.Fired), want)
		}
	}
}

// TestJoinCardinality: a two-pattern join over randomly generated facts
// fires once per matching pair.
func TestJoinCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 20; round++ {
		e := NewEngine()
		if err := e.LoadString(`
rule "pair"
when
    a : Left ( k : key )
    b : Right ( key == k )
then println("pair " + k) end
`); err != nil {
			t.Fatal(err)
		}
		leftCount := map[int]int{}
		rightCount := map[int]int{}
		for i := 0; i < 15; i++ {
			k := rng.Intn(5)
			leftCount[k]++
			e.Assert(NewFact("Left", map[string]any{"key": float64(k), "n": float64(i)}))
		}
		for i := 0; i < 15; i++ {
			k := rng.Intn(5)
			rightCount[k]++
			e.Assert(NewFact("Right", map[string]any{"key": float64(k), "n": float64(i)}))
		}
		want := 0
		for k, lc := range leftCount {
			want += lc * rightCount[k]
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Fired) != want {
			t.Fatalf("round %d: fired %d, want %d", round, len(res.Fired), want)
		}
	}
}

// TestRetractionStopsFutureMatches: retracting a fact in one rule prevents
// a lower-salience rule from seeing it.
func TestRetractionStopsFutureMatches(t *testing.T) {
	e := NewEngine()
	if err := e.LoadString(`
rule "eat" salience 10
when f : Token ( value > 0 )
then retract f end

rule "starve"
when f : Token ( value > 0 )
then println("leaked") end
`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.Assert(NewFact("Token", map[string]any{"value": float64(i + 1)}))
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range res.Output {
		if line == "leaked" {
			t.Fatal("low-salience rule saw a retracted fact")
		}
	}
	if len(e.FactsOfType("Token")) != 0 {
		t.Fatalf("tokens remain: %d", len(e.FactsOfType("Token")))
	}
}

// TestDeterministicFiringOrder: identical inputs produce identical firing
// logs across runs (agenda ordering is fully deterministic).
func TestDeterministicFiringOrder(t *testing.T) {
	build := func() []string {
		e := NewEngine()
		if err := e.LoadString(`
rule "r1" salience 5
when f : T ( v : value ) then println("r1 " + v) end
rule "r2" salience 5
when f : T ( v : value ) then println("r2 " + v) end
`); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			e.Assert(NewFact("T", map[string]any{"value": float64(i)}))
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Output
	}
	a, b := build(), build()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("nondeterministic firing:\n%v\n%v", a, b)
	}
}
