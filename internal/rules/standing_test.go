package rules

import (
	"context"
	"strings"
	"testing"
)

const standingTestRules = `
rule "Hot Reading"
when
    f : Reading ( v : value > 10 )
then
    println("hot " + v)
    recommend("cooling", "reduce " + v)
end
`

func newStandingForTest(t *testing.T) *Standing {
	t.Helper()
	e := NewEngine()
	if err := e.LoadString(standingTestRules); err != nil {
		t.Fatal(err)
	}
	return NewStanding(e)
}

func TestStandingStepFiresPerDelta(t *testing.T) {
	s := newStandingForTest(t)
	e := s.Engine()
	ctx := context.Background()

	firings, err := s.Step(ctx)
	if err != nil || len(firings) != 0 {
		t.Fatalf("empty memory fired %d rule(s), err %v", len(firings), err)
	}

	f := e.Assert(NewFact("Reading", map[string]any{"value": 42.0}))
	firings, err = s.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(firings) != 1 || firings[0].Rule != "Hot Reading" {
		t.Fatalf("firings = %+v, want one Hot Reading", firings)
	}
	if len(firings[0].Output) != 1 || !strings.Contains(firings[0].Output[0], "hot") {
		t.Fatalf("firing output = %q", firings[0].Output)
	}
	if len(firings[0].Recommendations) != 1 || firings[0].Recommendations[0].Category != "cooling" {
		t.Fatalf("firing recommendations = %+v", firings[0].Recommendations)
	}

	// Refraction: the same working memory must not refire.
	firings, err = s.Step(ctx)
	if err != nil || len(firings) != 0 {
		t.Fatalf("unchanged memory refired: %+v (err %v)", firings, err)
	}

	// A retract + fresh assert is a new tuple and fires again — with only
	// its own output, because Step drains the accumulators every call.
	e.Retract(f)
	e.Assert(NewFact("Reading", map[string]any{"value": 55.0}))
	firings, err = s.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(firings) != 1 || len(firings[0].Output) != 1 {
		t.Fatalf("second delta firings = %+v", firings)
	}
	if !strings.Contains(firings[0].Output[0], "55") {
		t.Fatalf("second firing output = %q, want the new value", firings[0].Output)
	}
}

func TestStandingStepDrainsAccumulators(t *testing.T) {
	s := newStandingForTest(t)
	e := s.Engine()
	e.Assert(NewFact("Reading", map[string]any{"value": 99.0}))
	if _, err := s.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.output) != 0 || len(e.recommendations) != 0 || len(e.firedLog) != 0 {
		t.Fatalf("accumulators not drained: %d output, %d recs, %d fired",
			len(e.output), len(e.recommendations), len(e.firedLog))
	}
}

// TestStandingRefractionStaysBounded is the long-lived-stream guard: days of
// assert/retract churn must not grow the refraction map without bound.
func TestStandingRefractionStaysBounded(t *testing.T) {
	s := newStandingForTest(t)
	s.firedHighWater = 64 // prune aggressively so the test stays fast
	e := s.Engine()
	ctx := context.Background()
	for i := 0; i < 500; i++ {
		f := e.Assert(NewFact("Reading", map[string]any{"value": float64(20 + i)}))
		if _, err := s.Step(ctx); err != nil {
			t.Fatal(err)
		}
		e.Retract(f)
	}
	e.mu.Lock()
	fired := len(e.fired)
	e.mu.Unlock()
	if fired > s.firedHighWater {
		t.Fatalf("refraction map grew to %d entries (high water %d)", fired, s.firedHighWater)
	}
}
