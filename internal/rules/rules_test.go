package rules

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const stallRule = `
// The Fig. 2 rule from the paper.
rule "Stalls per Cycle"
when
    f : MeanEventFact ( m : metric == "(BACK_END_BUBBLE_ALL / CPU_CYCLES)",
                        higherLower == HIGHER,
                        s : severity > 0.10,
                        e : eventName,
                        a : mainValue, v : eventValue,
                        factType == "Compared to Main" )
then
    println("Event " + e + " has a higher than average stall / cycle rate")
    println("    Average stall / cycle: " + a)
    println("    Event stall / cycle: " + v)
    println("    Percentage of total runtime: " + s)
end
`

func meanEventFact(event string, severity, mainVal, eventVal float64, hl string) *Fact {
	return NewFact("MeanEventFact", map[string]any{
		"metric":      "(BACK_END_BUBBLE_ALL / CPU_CYCLES)",
		"higherLower": hl,
		"severity":    severity,
		"eventName":   event,
		"mainValue":   mainVal,
		"eventValue":  eventVal,
		"factType":    "Compared to Main",
	})
}

func TestFig2RuleFires(t *testing.T) {
	e := NewEngine()
	if err := e.LoadString(stallRule); err != nil {
		t.Fatal(err)
	}
	e.Assert(meanEventFact("bicgstab", 0.31, 0.4, 0.75, "HIGHER"))
	e.Assert(meanEventFact("tiny", 0.02, 0.4, 0.9, "HIGHER"))  // below severity
	e.Assert(meanEventFact("matxvec", 0.2, 0.4, 0.1, "LOWER")) // wrong direction
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fired) != 1 {
		t.Fatalf("fired %v, want exactly one", res.Fired)
	}
	if !strings.Contains(res.Output[0], "bicgstab") {
		t.Fatalf("output: %v", res.Output)
	}
	if len(res.Output) != 4 {
		t.Fatalf("expected 4 println lines, got %d", len(res.Output))
	}
}

func TestRuleDoesNotRefire(t *testing.T) {
	e := NewEngine()
	if err := e.LoadString(stallRule); err != nil {
		t.Fatal(err)
	}
	e.Assert(meanEventFact("x", 0.5, 1, 2, "HIGHER"))
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Second run: same fact tuple must not fire again.
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fired) != 1 {
		t.Fatalf("refired: %v", res.Fired)
	}
}

func TestSalienceOrdersFiring(t *testing.T) {
	src := `
rule "low" salience 1
when f : Thing ( name )
then println("low") end

rule "high" salience 10
when f : Thing ( name )
then println("high") end
`
	e := NewEngine()
	if err := e.LoadString(src); err != nil {
		t.Fatal(err)
	}
	e.Assert(NewFact("Thing", map[string]any{"name": "a"}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Fired[0] != "high" || res.Fired[1] != "low" {
		t.Fatalf("firing order: %v", res.Fired)
	}
}

func TestNegativeSalience(t *testing.T) {
	src := `
rule "last" salience -5
when f : Thing ( name )
then println("last") end

rule "first"
when f : Thing ( name )
then println("first") end
`
	e := NewEngine()
	if err := e.LoadString(src); err != nil {
		t.Fatal(err)
	}
	e.Assert(NewFact("Thing", map[string]any{"name": "a"}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Fired[0] != "first" || res.Fired[1] != "last" {
		t.Fatalf("order: %v", res.Fired)
	}
}

func TestJoinAcrossFacts(t *testing.T) {
	// Two patterns joined on the shared variable e: load imbalance on an
	// event that is also nested inside another (the paper's MSA rule shape).
	src := `
rule "Load Imbalance"
when
    i : Imbalance ( e : eventName, r : ratio > 0.25, severity > 0.05 )
    n : Nesting ( inner == e, o : outer )
    c : Correlation ( innerEvent == e, outerEvent == o, value < -0.9 )
then
    println("Load imbalance: " + e + " inside " + o + " (ratio " + r + ")")
    recommend("scheduling", "use dynamic scheduling for " + e)
end
`
	e := NewEngine()
	if err := e.LoadString(src); err != nil {
		t.Fatal(err)
	}
	e.Assert(NewFact("Imbalance", map[string]any{"eventName": "inner_loop", "ratio": 0.45, "severity": 0.3}))
	e.Assert(NewFact("Imbalance", map[string]any{"eventName": "calm_loop", "ratio": 0.02, "severity": 0.3}))
	e.Assert(NewFact("Nesting", map[string]any{"inner": "inner_loop", "outer": "outer_loop"}))
	e.Assert(NewFact("Correlation", map[string]any{"innerEvent": "inner_loop", "outerEvent": "outer_loop", "value": -0.98}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fired) != 1 {
		t.Fatalf("fired %v", res.Fired)
	}
	if len(res.Recommendations) != 1 {
		t.Fatalf("recommendations: %v", res.Recommendations)
	}
	rec := res.Recommendations[0]
	if rec.Category != "scheduling" || !strings.Contains(rec.Text, "inner_loop") || rec.Rule != "Load Imbalance" {
		t.Fatalf("recommendation = %+v", rec)
	}
}

func TestJoinFailsWithoutMatchingPartner(t *testing.T) {
	src := `
rule "pair"
when
    A ( x : val )
    B ( val == x )
then println("paired " + x) end
`
	e := NewEngine()
	if err := e.LoadString(src); err != nil {
		t.Fatal(err)
	}
	e.Assert(NewFact("A", map[string]any{"val": 1.0}))
	e.Assert(NewFact("B", map[string]any{"val": 2.0}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fired) != 0 {
		t.Fatalf("join should not fire: %v", res.Fired)
	}
	// Add the matching partner.
	e.Assert(NewFact("B", map[string]any{"val": 1.0}))
	res, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fired) != 1 {
		t.Fatalf("fired %v", res.Fired)
	}
}

func TestNotPattern(t *testing.T) {
	src := `
rule "unsuppressed"
when
    t : Thing ( n : name )
    not Suppression ( name == n )
then println("ok " + n) end
`
	e := NewEngine()
	if err := e.LoadString(src); err != nil {
		t.Fatal(err)
	}
	e.Assert(NewFact("Thing", map[string]any{"name": "a"}))
	e.Assert(NewFact("Thing", map[string]any{"name": "b"}))
	e.Assert(NewFact("Suppression", map[string]any{"name": "b"}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != "ok a" {
		t.Fatalf("output: %v", res.Output)
	}
}

func TestExistsPattern(t *testing.T) {
	src := `
rule "summary"
when
    t : Trial ( n : name )
    exists Problem ( severity > 0.1 )
then println("trial " + n + " has problems") end
`
	e := NewEngine()
	if err := e.LoadString(src); err != nil {
		t.Fatal(err)
	}
	e.Assert(NewFact("Trial", map[string]any{"name": "t1"}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fired) != 0 {
		t.Fatal("exists fired without a matching fact")
	}
	// Adding two problems still fires the rule only once per Trial tuple.
	e.Assert(NewFact("Problem", map[string]any{"severity": 0.5}))
	e.Assert(NewFact("Problem", map[string]any{"severity": 0.9}))
	res, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fired) != 1 {
		t.Fatalf("exists fired %d times, want 1", len(res.Fired))
	}
	if res.Output[0] != "trial t1 has problems" {
		t.Fatalf("output: %v", res.Output)
	}
}

func TestAssertChainsRules(t *testing.T) {
	src := `
rule "observe" salience 10
when
    m : Measurement ( v : value > 100 )
then
    assert Symptom ( kind = "hot", value = v )
end

rule "diagnose"
when
    s : Symptom ( kind == "hot", v : value )
then
    println("diagnosed " + v)
    retract s
end
`
	e := NewEngine()
	if err := e.LoadString(src); err != nil {
		t.Fatal(err)
	}
	e.Assert(NewFact("Measurement", map[string]any{"value": 500.0}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fired) != 2 {
		t.Fatalf("fired %v", res.Fired)
	}
	if len(e.FactsOfType("Symptom")) != 0 {
		t.Fatal("symptom was not retracted")
	}
	if res.Output[0] != "diagnosed 500" {
		t.Fatalf("output: %v", res.Output)
	}
}

func TestArithmeticInExpressions(t *testing.T) {
	src := `
rule "ratio"
when
    m : Pair ( a : x, b : y, y > 0 )
then
    println("ratio=" + (a / b) + " scaled=" + (a * 2 - 1))
end
`
	e := NewEngine()
	if err := e.LoadString(src); err != nil {
		t.Fatal(err)
	}
	e.Assert(NewFact("Pair", map[string]any{"x": 10.0, "y": 4.0}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != "ratio=2.5 scaled=19" {
		t.Fatalf("output: %v", res.Output)
	}
}

func TestContainsOperator(t *testing.T) {
	src := `
rule "exchange"
when
    f : Event ( n : name contains "exchange" )
then println("found " + n) end
`
	e := NewEngine()
	if err := e.LoadString(src); err != nil {
		t.Fatal(err)
	}
	e.Assert(NewFact("Event", map[string]any{"name": "exchange_var__"}))
	e.Assert(NewFact("Event", map[string]any{"name": "bicgstab"}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != "found exchange_var__" {
		t.Fatalf("output: %v", res.Output)
	}
}

func TestFieldRefInConsequence(t *testing.T) {
	src := `
rule "fieldref"
when
    f : Thing ( name )
then println("name is " + f.name) end
`
	e := NewEngine()
	if err := e.LoadString(src); err != nil {
		t.Fatal(err)
	}
	e.Assert(NewFact("Thing", map[string]any{"name": "zeta"}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != "name is zeta" {
		t.Fatalf("output: %v", res.Output)
	}
}

func TestMissingFieldMeansNoMatch(t *testing.T) {
	src := `
rule "r"
when f : Thing ( missingField == 1 )
then println("no") end
`
	e := NewEngine()
	if err := e.LoadString(src); err != nil {
		t.Fatal(err)
	}
	e.Assert(NewFact("Thing", map[string]any{"name": "a"}))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fired) != 0 {
		t.Fatal("rule matched a fact missing the constrained field")
	}
}

func TestRunawayRuleDetected(t *testing.T) {
	src := `
rule "loop"
when f : Seed ( value )
then assert Seed ( value = 1 ) end
`
	e := NewEngine()
	e.MaxCycles = 50
	if err := e.LoadString(src); err != nil {
		t.Fatal(err)
	}
	e.Assert(NewFact("Seed", map[string]any{"value": 1.0}))
	if _, err := e.Run(); err == nil {
		t.Fatal("runaway rule not detected")
	}
}

func TestProgrammaticRule(t *testing.T) {
	e := NewEngine()
	var captured string
	e.AddRule(Rule{
		Name:     "go-rule",
		Patterns: []Pattern{{Binding: "f", Type: "Thing", Constraints: []Constraint{{Field: "name", BindVar: "n"}}}},
		Action: func(ctx *Context) error {
			captured = ctx.Bindings["n"].(string)
			return nil
		},
	})
	e.Assert(NewFact("Thing", map[string]any{"name": "direct"}))
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if captured != "direct" {
		t.Fatalf("captured %q", captured)
	}
}

func TestResetKeepsRules(t *testing.T) {
	e := NewEngine()
	if err := e.LoadString(stallRule); err != nil {
		t.Fatal(err)
	}
	e.Assert(meanEventFact("x", 0.5, 1, 2, "HIGHER"))
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if len(e.Facts()) != 0 {
		t.Fatal("Reset kept facts")
	}
	if len(e.Rules()) != 1 {
		t.Fatal("Reset dropped rules")
	}
	e.Assert(meanEventFact("x", 0.5, 1, 2, "HIGHER"))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fired) != 1 {
		t.Fatal("rule did not fire after Reset")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.prl")
	if err := os.WriteFile(path, []byte(stallRule), 0o644); err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	if err := e.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if len(e.Rules()) != 1 || e.Rules()[0] != "Stalls per Cycle" {
		t.Fatalf("rules: %v", e.Rules())
	}
	if err := e.LoadFile(filepath.Join(dir, "missing.prl")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no rules":          "   // just a comment\n",
		"bad rule name":     `rule notastring when f : T ( x ) then end`,
		"missing then":      `rule "r" when f : T ( x )`,
		"missing end":       `rule "r" when f : T ( x ) then println("a")`,
		"bad consequence":   `rule "r" when f : T ( x ) then frobnicate(x) end`,
		"unterminated str":  `rule "r`,
		"bad constraint op": `rule "r" when f : T ( x % 2 ) then println("a") end`,
		"bad salience":      `rule "r" salience abc when f : T ( x ) then println("a") end`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parse accepted %q", name, src)
		}
	}
}

func TestLexerDetails(t *testing.T) {
	toks, err := lex(`x >= 1.5e2 # comment
"s\"tr" <=`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "x" || toks[1].text != ">=" || toks[2].num != 150 {
		t.Fatalf("tokens: %+v", toks[:3])
	}
	if toks[3].text != `s"tr` || toks[4].text != "<=" {
		t.Fatalf("tokens: %+v", toks[3:5])
	}
}

func TestFactStringAndNormalize(t *testing.T) {
	f := NewFact("T", map[string]any{"i": 42, "u": uint64(7), "f32": float32(2), "b": true, "s": "x"})
	if v, _ := f.Get("i"); v != 42.0 {
		t.Fatalf("int not normalized: %v (%T)", v, v)
	}
	if v, _ := f.Get("u"); v != 7.0 {
		t.Fatalf("uint64 not normalized: %v", v)
	}
	if v, _ := f.Get("f32"); v != 2.0 {
		t.Fatalf("float32 not normalized: %v", v)
	}
	if _, ok := f.Get("nope"); ok {
		t.Fatal("missing field reported present")
	}
	if s := f.String(); !strings.HasPrefix(s, "T(") {
		t.Fatalf("String: %q", s)
	}
}

func TestSortedOutput(t *testing.T) {
	r := &Result{Output: []string{"b", "a"}}
	got := r.SortedOutput()
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("sorted: %v", got)
	}
	if r.Output[0] != "b" {
		t.Fatal("SortedOutput mutated the result")
	}
}
