package rules

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"perfknow/internal/obs"
)

// Engine is the working memory plus rule base. Typical use:
//
//	eng := rules.NewEngine()
//	eng.LoadString(src)            // or AddRule for programmatic rules
//	eng.Assert(rules.NewFact(...)) // repeat
//	res, err := eng.Run()
type Engine struct {
	rules []*Rule

	// mu guards the working memory and result accumulators so that facts
	// can be asserted from concurrent extraction goroutines. The
	// match-resolve-act loop itself runs on one goroutine; matchAll takes a
	// snapshot of the facts under the lock and matches lock-free, so rule
	// actions (which Assert/Retract through the same lock) never deadlock.
	// facts is the working memory in arbitrary storage order: Retract
	// swap-removes through factPos so retraction is O(1) regardless of
	// memory size (standing diagnoses retract and re-assert facts on every
	// streamed chunk). Assertion order is recovered by sorting on the
	// monotonic fact IDs wherever order is observable (orderedFactsLocked).
	mu              sync.Mutex
	facts           []*Fact
	factPos         map[*Fact]int
	nextID          int64
	output          []string
	recommendations []Recommendation

	fired    map[string]bool // refraction memory: rule + fact tuple ids
	firedLog []string

	// net is the incremental Rete-style match network (rete.go), built
	// lazily on the first Run and kept up to date by Assert/Retract.
	// naiveMode flips permanently when the network defers a match error,
	// so the error surfaces with exactly the naive matcher's semantics.
	net       *reteNet
	naiveMode bool

	// Naive forces the original scan-everything matcher. The behavior is
	// identical either way (the differential tests prove it); the flag
	// exists for those tests, for benchmarks, and as an escape hatch.
	Naive bool

	// MaxCycles bounds the match-fire loop to guard against rules that
	// assert endlessly. The default (1000) is far above any real knowledge
	// base in this repository.
	MaxCycles int
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{fired: make(map[string]bool), factPos: make(map[*Fact]int), MaxCycles: 1000}
}

// AddRule appends a rule to the rule base.
func (e *Engine) AddRule(r Rule) {
	rc := r
	e.rules = append(e.rules, &rc)
}

// Rules returns the rule names in load order.
func (e *Engine) Rules() []string {
	out := make([]string, len(e.rules))
	for i, r := range e.rules {
		out[i] = r.Name
	}
	return out
}

// Assert adds a fact to working memory and returns it. Safe for concurrent
// use; fact IDs are issued in assertion order under the lock.
func (e *Engine) Assert(f *Fact) *Fact {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextID++
	f.id = e.nextID
	e.factPos[f] = len(e.facts)
	e.facts = append(e.facts, f)
	if e.net != nil {
		e.net.assert(f)
	}
	return f
}

// Retract removes a fact from working memory. Safe for concurrent use.
func (e *Engine) Retract(f *Fact) {
	e.mu.Lock()
	defer e.mu.Unlock()
	i, ok := e.factPos[f]
	if !ok {
		return
	}
	if last := len(e.facts) - 1; i != last {
		e.facts[i] = e.facts[last]
		e.factPos[e.facts[i]] = i
	}
	e.facts = e.facts[:len(e.facts)-1]
	delete(e.factPos, f)
	if e.net != nil {
		e.net.retract(f)
	}
}

// orderedFactsLocked snapshots working memory in assertion order (fact IDs
// are issued monotonically under the lock). Callers must hold e.mu.
func (e *Engine) orderedFactsLocked() []*Fact {
	out := append([]*Fact(nil), e.facts...)
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Facts returns the current working memory in assertion order.
func (e *Engine) Facts() []*Fact {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.orderedFactsLocked()
}

// FactsOfType returns the working-memory facts of one type, in assertion
// order.
func (e *Engine) FactsOfType(t string) []*Fact {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []*Fact
	for _, f := range e.orderedFactsLocked() {
		if f.Type == t {
			out = append(out, f)
		}
	}
	return out
}

// addOutput appends one explanation line (println consequences).
func (e *Engine) addOutput(line string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.output = append(e.output, line)
}

// addRecommendation appends one structured recommendation.
func (e *Engine) addRecommendation(r Recommendation) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.recommendations = append(e.recommendations, r)
}

// Result is the outcome of a Run: explanation lines from println
// consequences, structured recommendations, and the fired-activation log.
type Result struct {
	Output          []string
	Recommendations []Recommendation
	Fired           []string // rule names in firing order
}

// activation is one fully matched rule instance waiting on the agenda.
type activation struct {
	rule     *Rule
	bindings Bindings
	key      string
	order    int // rule index, for deterministic tie-breaks
}

// Run executes the match-resolve-act loop until quiescence: on each cycle
// the engine computes all activations not yet fired, picks the one with the
// highest salience (ties broken by rule load order, then matched-tuple
// order), fires it, and repeats — so consequences that assert or retract
// facts influence subsequent matching exactly as in a production system.
func (e *Engine) Run() (*Result, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with observability: when ctx carries an obs tracer, a
// `rules.run` span wraps the whole loop and every rule firing gets a
// `rules.fire` child span carrying the rule name — so a diagnosis trace
// shows which knowledge fired, in order, with timings.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	ctx, runSpan := obs.StartSpan(ctx, "rules.run")
	res, err := e.run(ctx)
	if res != nil {
		runSpan.SetAttr("fired", fmt.Sprintf("%d", len(res.Fired)))
	}
	runSpan.SetError(err)
	runSpan.End()
	return res, err
}

func (e *Engine) run(ctx context.Context) (*Result, error) {
	for cycle := 0; ; cycle++ {
		if cycle >= e.MaxCycles {
			return nil, fmt.Errorf("rules: no quiescence after %d cycles (rule loop?)", e.MaxCycles)
		}
		next, err := e.selectActivation()
		if err != nil {
			return nil, err
		}
		if next == nil {
			break
		}
		if err := e.fireOne(ctx, next); err != nil {
			return nil, err
		}
	}
	e.mu.Lock()
	res := &Result{
		Output:          append([]string(nil), e.output...),
		Recommendations: append([]Recommendation(nil), e.recommendations...),
		Fired:           append([]string(nil), e.firedLog...),
	}
	e.mu.Unlock()
	return res, nil
}

// fireOne marks one activation fired and executes its action or
// consequences under a `rules.fire` span. It is the single act step shared
// by Run's match-resolve-act loop and by Standing.Step, so a standing
// firing is byte-identical to the same firing in a batch run.
func (e *Engine) fireOne(ctx context.Context, next *activation) error {
	e.fired[next.key] = true
	e.firedLog = append(e.firedLog, next.rule.Name)
	_, fireSpan := obs.StartSpan(ctx, "rules.fire", "rule", next.rule.Name)
	// Clone the bindings so a consequence mutating its Context cannot
	// taint an agenda entry that outlives the firing (the naive matcher
	// rebuilt envs every cycle, which hid mutations the same way).
	rctx := &Context{Engine: e, Rule: next.rule, Bindings: next.bindings.clone()}
	var fireErr error
	if next.rule.Action != nil {
		if err := next.rule.Action(rctx); err != nil {
			fireErr = fmt.Errorf("rules: rule %q action: %w", next.rule.Name, err)
		}
	} else {
		for _, c := range next.rule.Consequences {
			if err := c.Execute(rctx); err != nil {
				fireErr = fmt.Errorf("rules: rule %q consequence: %w", next.rule.Name, err)
				break
			}
		}
	}
	fireSpan.SetError(fireErr)
	fireSpan.End()
	return fireErr
}

// selectActivation returns the highest-priority unfired activation, or nil
// at quiescence. The Rete agenda and the naive matcher produce the same
// activation set with the same keys, and better() is a total order, so the
// choice is identical regardless of which path computed it.
func (e *Engine) selectActivation() (*activation, error) {
	if !e.Naive && !e.naiveMode {
		e.mu.Lock()
		e.ensureNetLocked()
		if e.net.err == nil {
			var next *activation
			for _, a := range e.net.agenda {
				if e.fired[a.key] {
					continue
				}
				if next == nil || better(a, next) {
					next = a
				}
			}
			e.mu.Unlock()
			return next, nil
		}
		// The network deferred a Pattern.match error. Which error a Run
		// reports depends on the naive matcher's deterministic rule/env/fact
		// order, so fall back to it permanently — e.facts is authoritative,
		// so behavior (including the error text) is exactly the original.
		e.naiveMode = true
		e.net = nil
		e.mu.Unlock()
	}
	acts, err := e.matchAll()
	if err != nil {
		return nil, err
	}
	var next *activation
	for i := range acts {
		a := &acts[i]
		if e.fired[a.key] {
			continue
		}
		if next == nil || better(a, next) {
			next = a
		}
	}
	return next, nil
}

// ensureNetLocked (re)builds the Rete network when missing or stale (rules
// added since the last build), replaying working memory in assertion order.
// Caller holds e.mu.
func (e *Engine) ensureNetLocked() {
	if e.net != nil && e.net.ruleCount == len(e.rules) {
		return
	}
	e.net = buildNet(e.rules)
	for _, f := range e.orderedFactsLocked() {
		e.net.assert(f)
	}
}

func better(a, b *activation) bool {
	if a.rule.Salience != b.rule.Salience {
		return a.rule.Salience > b.rule.Salience
	}
	if a.order != b.order {
		return a.order < b.order
	}
	return a.key < b.key
}

// matchAll enumerates every (rule, fact-tuple) activation in the current
// working memory. It matches against a snapshot taken under the lock, so
// the pattern walk itself runs lock-free.
func (e *Engine) matchAll() ([]activation, error) {
	e.mu.Lock()
	facts := e.orderedFactsLocked()
	e.mu.Unlock()
	var acts []activation
	for ri, r := range e.rules {
		envs := []Bindings{{}}
		ids := [][]int64{nil}
		for pi := range r.Patterns {
			p := &r.Patterns[pi]
			var nextEnvs []Bindings
			var nextIDs [][]int64
			for ei, env := range envs {
				if p.Negated || p.Exists {
					found := false
					for _, f := range facts {
						_, ok, err := p.match(f, env)
						if err != nil {
							return nil, fmt.Errorf("rules: rule %q: %w", r.Name, err)
						}
						if ok {
							found = true
							break
						}
					}
					// Negated keeps the env when nothing matched; Exists
					// keeps it when something did. Neither contributes
					// bindings or tuple identity.
					if found == p.Exists {
						nextEnvs = append(nextEnvs, env)
						nextIDs = append(nextIDs, ids[ei])
					}
					continue
				}
				for _, f := range facts {
					newEnv, ok, err := p.match(f, env)
					if err != nil {
						return nil, fmt.Errorf("rules: rule %q: %w", r.Name, err)
					}
					if ok {
						nextEnvs = append(nextEnvs, newEnv)
						nextIDs = append(nextIDs, append(append([]int64(nil), ids[ei]...), f.id))
					}
				}
			}
			envs, ids = nextEnvs, nextIDs
			if len(envs) == 0 {
				break
			}
		}
		if len(r.Patterns) == 0 {
			continue // a rule with no patterns never fires
		}
		for i, env := range envs {
			key := r.Name + "|" + tupleKey(ids[i])
			acts = append(acts, activation{rule: r, bindings: env, key: key, order: ri})
		}
	}
	return acts, nil
}

func tupleKey(ids []int64) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return strings.Join(parts, ",")
}

// Reset clears working memory, output and refraction state but keeps the
// rule base, so one loaded knowledge base can process many trials.
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.facts = nil
	e.factPos = make(map[*Fact]int)
	e.output = nil
	e.recommendations = nil
	e.fired = make(map[string]bool)
	e.firedLog = nil
	e.net = nil
	e.naiveMode = false
}

// SortedOutput returns the output lines sorted (useful in tests where
// firing order between equal-salience rules is irrelevant).
func (r *Result) SortedOutput() []string {
	out := append([]string(nil), r.Output...)
	sort.Strings(out)
	return out
}
