package rules

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"unicode"
)

// This file parses the .prl rule language, a faithful subset of the Drools
// .drl syntax used in the paper's Fig. 2:
//
//	rule "Stalls per Cycle"
//	salience 10
//	when
//	    f : MeanEventFact ( m : metric == "(BACK_END_BUBBLE_ALL / CPU_CYCLES)",
//	                        higherLower == HIGHER,
//	                        s : severity > 0.10,
//	                        e : eventName,
//	                        factType == "Compared to Main" )
//	    not Suppression ( eventName == e )
//	then
//	    println("Event " + e + " has a higher than average stall / cycle rate")
//	    recommend("memory", "focus optimization on event " + e)
//	    assert Diagnosis ( eventName = e, problem = "stalls" )
//	end
//
// Comments run from "//" or "#" to end of line.

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokPunct // ( ) , : .
	tokOp    // == != <= >= < > + - * / =
)

type token struct {
	kind tokKind
	text string
	num  float64
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		case c == '#':
			l.skipLine()
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			if !l.lexOpOrPunct() {
				return nil, fmt.Errorf("rules: line %d: unexpected character %q", l.line, string(c))
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
	return l.toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			switch next {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				sb.WriteByte(next)
			}
			l.pos += 2
			continue
		}
		if c == '"' {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), line: l.line})
			return nil
		}
		if c == '\n' {
			break
		}
		sb.WriteByte(c)
		l.pos++
	}
	_ = start
	return fmt.Errorf("rules: line %d: unterminated string", l.line)
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' ||
		l.src[l.pos] == 'E' || ((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
		l.pos++
	}
	text := l.src[start:l.pos]
	n, err := strconv.ParseFloat(text, 64)
	if err != nil {
		// Trailing '.' etc: back off one.
		text = strings.TrimRight(text, ".eE+-")
		l.pos = start + len(text)
		n, _ = strconv.ParseFloat(text, 64)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, num: n, line: l.line})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], line: l.line})
}

func (l *lexer) lexOpOrPunct() bool {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "==", "!=", "<=", ">=":
		l.toks = append(l.toks, token{kind: tokOp, text: two, line: l.line})
		l.pos += 2
		return true
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', ':', '.':
		l.toks = append(l.toks, token{kind: tokPunct, text: string(c), line: l.line})
	case '<', '>', '+', '-', '*', '/', '=':
		l.toks = append(l.toks, token{kind: tokOp, text: string(c), line: l.line})
	default:
		return false
	}
	l.pos++
	return true
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectIdent(word string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != word {
		return fmt.Errorf("rules: line %d: expected %q, got %q", t.line, word, t.text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if (t.kind != tokPunct && t.kind != tokOp) || t.text != s {
		return fmt.Errorf("rules: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) atIdent(word string) bool {
	return p.cur().kind == tokIdent && p.cur().text == word
}

// Parse parses .prl source into rules.
func Parse(src string) ([]Rule, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Rule
	for p.cur().kind != tokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rules: no rules found in source")
	}
	return out, nil
}

// LoadString parses src and adds the rules to the engine.
func (e *Engine) LoadString(src string) error {
	rs, err := Parse(src)
	if err != nil {
		return err
	}
	for _, r := range rs {
		e.AddRule(r)
	}
	return nil
}

// LoadFile parses a .prl file and adds the rules to the engine.
func (e *Engine) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("rules: %w", err)
	}
	if err := e.LoadString(string(data)); err != nil {
		return fmt.Errorf("rules: %s: %w", path, err)
	}
	return nil
}

func (p *parser) parseRule() (Rule, error) {
	var r Rule
	if err := p.expectIdent("rule"); err != nil {
		return r, err
	}
	name := p.next()
	if name.kind != tokString {
		return r, fmt.Errorf("rules: line %d: rule name must be a string, got %q", name.line, name.text)
	}
	r.Name = name.text
	if p.atIdent("salience") {
		p.next()
		neg := false
		if p.cur().kind == tokOp && p.cur().text == "-" {
			neg = true
			p.next()
		}
		t := p.next()
		if t.kind != tokNumber {
			return r, fmt.Errorf("rules: line %d: salience must be a number", t.line)
		}
		r.Salience = int(t.num)
		if neg {
			r.Salience = -r.Salience
		}
	}
	if err := p.expectIdent("when"); err != nil {
		return r, err
	}
	for !p.atIdent("then") {
		if p.cur().kind == tokEOF {
			return r, fmt.Errorf("rules: rule %q: missing 'then'", r.Name)
		}
		pat, err := p.parsePattern()
		if err != nil {
			return r, fmt.Errorf("rules: rule %q: %w", r.Name, err)
		}
		r.Patterns = append(r.Patterns, pat)
	}
	p.next() // then
	for !p.atIdent("end") {
		if p.cur().kind == tokEOF {
			return r, fmt.Errorf("rules: rule %q: missing 'end'", r.Name)
		}
		c, err := p.parseConsequence()
		if err != nil {
			return r, fmt.Errorf("rules: rule %q: %w", r.Name, err)
		}
		r.Consequences = append(r.Consequences, c)
	}
	p.next() // end
	return r, nil
}

func (p *parser) parsePattern() (Pattern, error) {
	var pat Pattern
	if p.atIdent("not") {
		pat.Negated = true
		p.next()
	} else if p.atIdent("exists") {
		pat.Exists = true
		p.next()
	}
	first := p.next()
	if first.kind != tokIdent {
		return pat, fmt.Errorf("line %d: expected pattern, got %q", first.line, first.text)
	}
	if p.cur().kind == tokPunct && p.cur().text == ":" {
		p.next()
		typ := p.next()
		if typ.kind != tokIdent {
			return pat, fmt.Errorf("line %d: expected fact type after binding", typ.line)
		}
		pat.Binding = first.text
		pat.Type = typ.text
	} else {
		pat.Type = first.text
	}
	if err := p.expectPunct("("); err != nil {
		return pat, err
	}
	for !(p.cur().kind == tokPunct && p.cur().text == ")") {
		c, err := p.parseConstraint()
		if err != nil {
			return pat, err
		}
		pat.Constraints = append(pat.Constraints, c)
		if p.cur().kind == tokPunct && p.cur().text == "," {
			p.next()
		}
	}
	p.next() // )
	return pat, nil
}

func (p *parser) parseConstraint() (Constraint, error) {
	var c Constraint
	first := p.next()
	if first.kind != tokIdent {
		return c, fmt.Errorf("line %d: expected field or binding, got %q", first.line, first.text)
	}
	if p.cur().kind == tokPunct && p.cur().text == ":" {
		p.next()
		field := p.next()
		if field.kind != tokIdent {
			return c, fmt.Errorf("line %d: expected field after binding %q", field.line, first.text)
		}
		c.BindVar = first.text
		c.Field = field.text
	} else {
		c.Field = first.text
	}
	// Optional comparison.
	if p.cur().kind == tokOp || (p.cur().kind == tokIdent && p.cur().text == "contains") {
		op := p.next().text
		switch op {
		case "==", "!=", "<", ">", "<=", ">=", "contains":
		default:
			return c, fmt.Errorf("unsupported constraint operator %q", op)
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return c, err
		}
		c.Op = op
		c.RHS = rhs
	}
	return c, nil
}

func (p *parser) parseConsequence() (Consequence, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("line %d: expected consequence, got %q", t.line, t.text)
	}
	switch t.text {
	case "println":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return Println{Arg: arg}, nil
	case "recommend":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cat, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		text, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return Recommend{Category: cat, Text: text}, nil
	case "assert":
		typ := p.next()
		if typ.kind != tokIdent {
			return nil, fmt.Errorf("line %d: expected fact type after assert", typ.line)
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		fields := make(map[string]Expr)
		for !(p.cur().kind == tokPunct && p.cur().text == ")") {
			name := p.next()
			if name.kind != tokIdent {
				return nil, fmt.Errorf("line %d: expected field name", name.line)
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fields[name.text] = val
			if p.cur().kind == tokPunct && p.cur().text == "," {
				p.next()
			}
		}
		p.next() // )
		return AssertFact{Type: typ.text, Fields: fields}, nil
	case "retract":
		b := p.next()
		if b.kind != tokIdent {
			return nil, fmt.Errorf("line %d: expected binding after retract", b.line)
		}
		return RetractFact{Binding: b.text}, nil
	}
	return nil, fmt.Errorf("line %d: unknown consequence %q", t.line, t.text)
}

// parseExpr: additive over multiplicative over primary.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.next().text
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && (p.cur().text == "*" || p.cur().text == "/") {
		op := p.next().text
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		return Lit{V: t.num}, nil
	case t.kind == tokString:
		return Lit{V: t.text}, nil
	case t.kind == tokOp && t.text == "-":
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return Binary{Op: "-", L: Lit{V: 0.0}, R: inner}, nil
	case t.kind == tokPunct && t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		if p.cur().kind == tokPunct && p.cur().text == "." {
			p.next()
			field := p.next()
			if field.kind != tokIdent {
				return nil, fmt.Errorf("line %d: expected field after %q.", field.line, t.text)
			}
			return FieldRef{Binding: t.text, Field: field.text}, nil
		}
		return VarRef{Name: t.text}, nil
	}
	return nil, fmt.Errorf("line %d: unexpected token %q in expression", t.line, t.text)
}
