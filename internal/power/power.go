// Package power implements the component-based processor power and energy
// model of §III-C (Eq. 1 and Eq. 2): the power drawn by each on-die
// component is its access rate times an architectural scaling factor times
// the published thermal design power, and total processor power is the sum
// over components plus idle power. For multiprocessor runs, total system
// power sums the per-processor estimate over all processing elements.
//
// Access rates come straight from the hardware counter metrics recorded in
// a trial, so the model composes with PerfExplorer scripts: derive the
// rates, estimate power and energy, and let inference rules recommend
// optimization levels for low power, low energy, or both.
package power

import (
	"fmt"
	"sort"

	"perfknow/internal/perfdmf"
)

// Component is one on-die block tracked by the model.
type Component struct {
	Name        string
	Metric      string  // counter metric whose per-cycle rate drives the block
	ArchScaling float64 // architectural scaling factor (Eq. 1)
}

// Model carries the processor parameters.
type Model struct {
	TDPWatts   float64
	IdleWatts  float64
	ClockHz    float64
	Components []Component
}

// Itanium2 returns the model instantiated for the Madison processors of the
// paper's Altix systems: 130 W TDP with a high idle fraction, which is why
// Table I's total power moves only a few percent across optimization levels
// while energy moves by 20x.
func Itanium2() Model {
	return Model{
		TDPWatts:  130,
		IdleWatts: 98,
		ClockHz:   1.5e9,
		Components: []Component{
			{Name: "frontend", Metric: "INSTRUCTIONS_ISSUED", ArchScaling: 0.055},
			{Name: "fpu", Metric: "FP_OPS_RETIRED", ArchScaling: 0.110},
			{Name: "alu", Metric: "INT_OPS_RETIRED", ArchScaling: 0.050},
			{Name: "l1d", Metric: "L1D_REFERENCES", ArchScaling: 0.060},
			{Name: "l2", Metric: "L2_DATA_REFERENCES_L2_ALL", ArchScaling: 0.200},
			{Name: "l3", Metric: "L3_REFERENCES", ArchScaling: 0.400},
			{Name: "mem_interface", Metric: "LOCAL_MEMORY_ACCESSES", ArchScaling: 0.600},
			{Name: "numalink", Metric: "REMOTE_MEMORY_ACCESSES", ArchScaling: 0.800},
		},
	}
}

// Report is the model's output for one trial.
type Report struct {
	Trial        string
	Processors   int
	Seconds      float64 // wall-clock of the dominant (main) event
	WattsPerProc float64 // Eq. 2 per processor
	TotalWatts   float64 // summed over processors
	Joules       float64 // TotalWatts * Seconds
	FLOP         float64 // total floating point operations
	FLOPPerJoule float64
	IPC          float64            // completed instructions per cycle (diagnostic)
	Breakdown    map[string]float64 // component → watts per processor
}

// Estimate computes the power report for a trial. It uses the main event's
// inclusive values: cycles and counter totals summed over threads give the
// machine-wide activity, while per-processor rates divide each thread's
// activity by its own cycles (threads map 1:1 to processors here).
func (m Model) Estimate(t *perfdmf.Trial) (*Report, error) {
	const cyclesMetric = "CPU_CYCLES"
	if !t.HasMetric(cyclesMetric) {
		return nil, fmt.Errorf("power: trial %q lacks %s", t.Name, cyclesMetric)
	}
	main := t.MainEvent(perfdmf.TimeMetric)
	if main == nil {
		main = t.MainEvent(cyclesMetric)
	}
	if main == nil {
		return nil, fmt.Errorf("power: trial %q has no events", t.Name)
	}

	rep := &Report{
		Trial:      t.Name,
		Processors: t.Threads,
		Breakdown:  make(map[string]float64, len(m.Components)),
	}
	cycles := main.Inclusive[cyclesMetric]
	meanCycles := perfdmf.Mean(cycles)
	if meanCycles <= 0 {
		return nil, fmt.Errorf("power: trial %q has zero cycles in %q", t.Name, main.Name)
	}
	rep.Seconds = meanCycles / m.ClockHz
	if t.HasMetric(perfdmf.TimeMetric) {
		rep.Seconds = perfdmf.Mean(main.Inclusive[perfdmf.TimeMetric]) / 1e6
	}

	// Per-processor watts: average of per-thread component power (Eq. 1
	// applied thread by thread so heterogeneous threads are represented).
	var watts float64
	for th := 0; th < t.Threads; th++ {
		cyc := valueOr(cycles, th, meanCycles)
		if cyc <= 0 {
			continue
		}
		perThread := m.IdleWatts
		for _, c := range m.Components {
			vals, ok := main.Inclusive[c.Metric]
			if !ok {
				continue
			}
			rate := valueOr(vals, th, 0) / cyc // accesses per cycle
			p := rate * c.ArchScaling * m.TDPWatts
			perThread += p
			rep.Breakdown[c.Name] += p / float64(t.Threads)
		}
		watts += perThread
	}
	rep.WattsPerProc = watts / float64(t.Threads)
	rep.TotalWatts = rep.WattsPerProc * float64(rep.Processors)
	rep.Joules = rep.TotalWatts * rep.Seconds

	if vals, ok := main.Inclusive["FP_OPS_RETIRED"]; ok {
		rep.FLOP = perfdmf.Sum(vals)
	}
	if rep.Joules > 0 {
		rep.FLOPPerJoule = rep.FLOP / rep.Joules
	}
	if vals, ok := main.Inclusive["INSTRUCTIONS_COMPLETED"]; ok {
		rep.IPC = perfdmf.Sum(vals) / perfdmf.Sum(cycles)
	}
	return rep, nil
}

// PerEvent estimates the power each flat event dissipates while it runs,
// using exclusive values — how "optimizing various functions affects the
// power consumption in the hardware" (§III-C). Events with fewer than
// minCycles mean exclusive cycles are skipped as noise.
func (m Model) PerEvent(t *perfdmf.Trial, minCycles float64) ([]EventPower, error) {
	const cyclesMetric = "CPU_CYCLES"
	if !t.HasMetric(cyclesMetric) {
		return nil, fmt.Errorf("power: trial %q lacks %s", t.Name, cyclesMetric)
	}
	var out []EventPower
	for _, e := range t.Events {
		if e.IsCallpath() {
			continue
		}
		cyc := perfdmf.Mean(e.Exclusive[cyclesMetric])
		if cyc < minCycles {
			continue
		}
		ep := EventPower{Event: e.Name, Watts: m.IdleWatts}
		for _, c := range m.Components {
			vals, ok := e.Exclusive[c.Metric]
			if !ok {
				continue
			}
			rate := perfdmf.Mean(vals) / cyc
			ep.Watts += rate * c.ArchScaling * m.TDPWatts
		}
		ep.Seconds = cyc / m.ClockHz
		ep.Joules = ep.Watts * ep.Seconds
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Joules != out[j].Joules {
			return out[i].Joules > out[j].Joules
		}
		return out[i].Event < out[j].Event
	})
	return out, nil
}

// EventPower is the per-event power/energy estimate.
type EventPower struct {
	Event   string
	Watts   float64 // per processor while the event runs
	Seconds float64
	Joules  float64
}

func valueOr(xs []float64, i int, def float64) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return def
}
