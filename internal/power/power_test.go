package power

import (
	"math"
	"testing"

	"perfknow/internal/perfdmf"
)

// mkTrial builds a 2-thread trial whose main event runs `cycles` cycles
// with the given per-thread activity rates (events per cycle).
func mkTrial(cycles float64, fpRate, issueRate float64) *perfdmf.Trial {
	t := perfdmf.NewTrial("app", "power", "t", 2)
	for _, m := range []string{perfdmf.TimeMetric, "CPU_CYCLES", "FP_OPS_RETIRED",
		"INSTRUCTIONS_ISSUED", "INSTRUCTIONS_COMPLETED", "INT_OPS_RETIRED", "L1D_REFERENCES"} {
		t.AddMetric(m)
	}
	main := t.EnsureEvent("main")
	busy := t.EnsureEvent("busy")
	for th := 0; th < 2; th++ {
		usec := cycles / 1.5e9 * 1e6
		main.SetValue(perfdmf.TimeMetric, th, usec, usec*0.1)
		main.SetValue("CPU_CYCLES", th, cycles, cycles*0.1)
		main.SetValue("FP_OPS_RETIRED", th, fpRate*cycles, fpRate*cycles*0.1)
		main.SetValue("INSTRUCTIONS_ISSUED", th, issueRate*cycles, issueRate*cycles*0.1)
		main.SetValue("INSTRUCTIONS_COMPLETED", th, issueRate*cycles*0.95, issueRate*cycles*0.1)
		main.SetValue("INT_OPS_RETIRED", th, 0.2*cycles, 0.02*cycles)
		main.SetValue("L1D_REFERENCES", th, 0.25*cycles, 0.025*cycles)
		busy.SetValue(perfdmf.TimeMetric, th, usec*0.9, usec*0.9)
		busy.SetValue("CPU_CYCLES", th, cycles*0.9, cycles*0.9)
		busy.SetValue("FP_OPS_RETIRED", th, fpRate*cycles*0.9, fpRate*cycles*0.9)
		busy.SetValue("INSTRUCTIONS_ISSUED", th, issueRate*cycles*0.9, issueRate*cycles*0.9)
		busy.SetValue("INSTRUCTIONS_COMPLETED", th, issueRate*cycles*0.9, issueRate*cycles*0.9)
		busy.SetValue("INT_OPS_RETIRED", th, 0.18*cycles, 0.18*cycles)
		busy.SetValue("L1D_REFERENCES", th, 0.22*cycles, 0.22*cycles)
	}
	return t
}

func TestEstimateBasics(t *testing.T) {
	m := Itanium2()
	tr := mkTrial(1.5e9, 0.3, 1.2) // one second of work
	rep, err := m.Estimate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Seconds-1.0) > 1e-9 {
		t.Fatalf("seconds = %g", rep.Seconds)
	}
	if rep.WattsPerProc <= m.IdleWatts {
		t.Fatal("active processor should draw more than idle")
	}
	if rep.WattsPerProc > m.TDPWatts {
		t.Fatalf("watts %g exceeds TDP", rep.WattsPerProc)
	}
	if rep.TotalWatts != rep.WattsPerProc*2 {
		t.Fatal("total watts should sum over processors")
	}
	if math.Abs(rep.Joules-rep.TotalWatts*rep.Seconds) > 1e-9 {
		t.Fatal("joules != watts * seconds")
	}
	wantFLOP := 0.3 * 1.5e9 * 2
	if math.Abs(rep.FLOP-wantFLOP) > 1 {
		t.Fatalf("FLOP = %g, want %g", rep.FLOP, wantFLOP)
	}
	if rep.FLOPPerJoule <= 0 {
		t.Fatal("FLOP/Joule should be positive")
	}
	if rep.Breakdown["fpu"] <= 0 || rep.Breakdown["frontend"] <= 0 {
		t.Fatalf("breakdown: %v", rep.Breakdown)
	}
	if math.Abs(rep.IPC-1.14) > 0.01 {
		t.Fatalf("IPC = %g", rep.IPC)
	}
}

func TestHigherOverlapMeansHigherPowerLowerEnergy(t *testing.T) {
	// The Valluri & John relationship the paper confirms: more instruction
	// overlap (higher IPC at same work) raises power but cuts energy.
	m := Itanium2()
	slow := mkTrial(3e9, 0.15, 0.6) // same total work over 2x cycles
	fast := mkTrial(1.5e9, 0.3, 1.2)
	rs, err := m.Estimate(slow)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := m.Estimate(fast)
	if err != nil {
		t.Fatal(err)
	}
	if rf.WattsPerProc <= rs.WattsPerProc {
		t.Fatalf("higher IPC should draw more power: %g vs %g", rf.WattsPerProc, rs.WattsPerProc)
	}
	if rf.Joules >= rs.Joules {
		t.Fatalf("faster run should use less energy: %g vs %g", rf.Joules, rs.Joules)
	}
	if rf.FLOPPerJoule <= rs.FLOPPerJoule {
		t.Fatal("faster run should be more energy efficient")
	}
	// Power moves by percents, energy by the full speed factor — Table I's
	// signature (idle-dominated package power).
	powerRatio := rf.WattsPerProc / rs.WattsPerProc
	energyRatio := rs.Joules / rf.Joules
	if powerRatio > 1.3 {
		t.Fatalf("power ratio %g too large — idle should dominate", powerRatio)
	}
	if energyRatio < 1.5 {
		t.Fatalf("energy ratio %g too small", energyRatio)
	}
}

func TestEstimateErrors(t *testing.T) {
	m := Itanium2()
	empty := perfdmf.NewTrial("a", "e", "t", 1)
	if _, err := m.Estimate(empty); err == nil {
		t.Fatal("trial without cycles accepted")
	}
	noEvents := perfdmf.NewTrial("a", "e", "t", 1)
	noEvents.AddMetric("CPU_CYCLES")
	if _, err := m.Estimate(noEvents); err == nil {
		t.Fatal("trial without events accepted")
	}
	zero := perfdmf.NewTrial("a", "e", "t", 1)
	zero.AddMetric("CPU_CYCLES")
	zero.EnsureEvent("main")
	if _, err := m.Estimate(zero); err == nil {
		t.Fatal("zero-cycle trial accepted")
	}
}

func TestPerEvent(t *testing.T) {
	m := Itanium2()
	tr := mkTrial(1.5e9, 0.3, 1.2)
	evs, err := m.PerEvent(tr, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("events: %+v", evs)
	}
	// busy has 90% of exclusive cycles: it should top the energy ranking.
	if evs[0].Event != "busy" {
		t.Fatalf("ranking: %+v", evs)
	}
	if evs[0].Watts <= m.IdleWatts || evs[0].Joules <= 0 {
		t.Fatalf("busy power: %+v", evs[0])
	}
	// Raising the floor filters everything.
	evs, err = m.PerEvent(tr, 1e18)
	if err != nil || len(evs) != 0 {
		t.Fatalf("filter failed: %v %v", evs, err)
	}
	if _, err := m.PerEvent(perfdmf.NewTrial("a", "e", "t", 1), 0); err == nil {
		t.Fatal("missing metric accepted")
	}
}
