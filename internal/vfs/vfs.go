// Package vfs abstracts the filesystem operations the PerfDMF repository
// performs, so the durability of its storage path can be proven instead of
// assumed: production code runs on OS (real files, real fsync) while tests
// run on Faulty, a deterministic fault-injecting wrapper that synthesizes
// short/torn writes, ENOSPC, EIO, rename failures and whole-process
// crashes at any point in the operation stream.
//
// The interface is deliberately coarse — whole-file reads and writes, not
// streaming handles — because that is exactly the granularity the
// repository uses and the granularity at which crash-consistency is
// reasoned about: a WriteFile either leaves the full bytes, a torn prefix,
// or nothing; a Rename either happened or did not.
package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// ErrFsync tags failures that happened while flushing data to stable
// storage (file fsync inside WriteFile, or SyncDir). Callers that track
// durability health match it with errors.Is.
var ErrFsync = errors.New("fsync failed")

// FS is the set of filesystem operations the repository needs. Every
// method maps onto one logical storage operation; fault injectors count
// and intercept calls at this granularity.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadFile returns the full contents of a file.
	ReadFile(path string) ([]byte, error)
	// WriteFile creates or truncates path, writes data and flushes it to
	// stable storage (fsync) before closing. A sync failure is reported
	// wrapped in ErrFsync.
	WriteFile(path string, data []byte, perm fs.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file or empty directory.
	Remove(path string) error
	// ReadDir lists a directory, sorted by filename.
	ReadDir(path string) ([]fs.DirEntry, error)
	// Stat describes a file.
	Stat(path string) (fs.FileInfo, error)
	// SyncDir flushes a directory's metadata (entry creation, rename,
	// removal) to stable storage. A failure is reported wrapped in
	// ErrFsync. On platforms where directories cannot be fsynced the
	// implementation may degrade to a no-op.
	SyncDir(path string) error
}

// OS is the production FS: the real filesystem with real durability
// barriers.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFile implements FS: create, write, fsync, close. Unlike
// os.WriteFile it does not return until the bytes are on stable storage
// (or the sync failure is reported), so a crash immediately after a
// successful WriteFile cannot lose the contents.
func (OS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("%w: %s: %v", ErrFsync, path, err)
	}
	return f.Close()
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// ReadDir implements FS.
func (OS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

// Stat implements FS.
func (OS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

// SyncDir implements FS: fsync the directory so entry operations (the
// rename that published a trial, the removal that deleted one) survive a
// crash. Filesystems that do not support fsync on directories (EINVAL)
// are tolerated silently.
func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, errors.ErrUnsupported) {
			return nil
		}
		return fmt.Errorf("%w: %s: %v", ErrFsync, path, err)
	}
	return nil
}
