package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"sync"
)

// ErrCrashed is returned by every operation of a Faulty filesystem after
// its crash point has been reached: the simulated process is dead and no
// further I/O happens. Reopen the directory with a fresh FS (usually OS)
// to model the post-crash restart.
var ErrCrashed = errors.New("vfs: simulated crash")

// Op names one FS operation kind for fault targeting.
type Op string

// The operation kinds a Fault can target.
const (
	OpMkdirAll  Op = "mkdirall"
	OpReadFile  Op = "readfile"
	OpWriteFile Op = "writefile"
	OpRename    Op = "rename"
	OpRemove    Op = "remove"
	OpReadDir   Op = "readdir"
	OpStat      Op = "stat"
	OpSyncDir   Op = "syncdir"
)

// Fault is one deterministic injection rule: when an operation of kind Op
// whose path contains Path runs, return Err instead of performing it.
type Fault struct {
	// Op is the operation kind to intercept.
	Op Op
	// Path is a substring the operation's path must contain ("" matches
	// every path). For Rename both the old and new path are matched.
	Path string
	// Err is returned to the caller. Wrap or use syscall errors
	// (syscall.ENOSPC, syscall.EIO) so errors.Is matching works upstream.
	Err error
	// Skip lets this many matching calls through before injecting.
	Skip int
	// Count bounds how many times the fault fires (0 = every matching
	// call, forever).
	Count int
	// Torn makes an intercepted WriteFile first persist a prefix of the
	// data (a short/torn write) before reporting Err, modeling a write
	// that ran out of space or power partway through.
	Torn bool
}

// Faulty wraps an inner FS (usually OS over a temp directory) and injects
// faults deterministically: targeted errors via Inject, and a crash point
// via CrashAt that halts the operation stream after N operations. All
// state transitions are under one mutex, so a given schedule replays
// identically — the foundation of the crash-point sweep in the repository
// tests.
type Faulty struct {
	inner FS

	mu      sync.Mutex
	ops     int
	crashAt int
	crashed bool
	faults  []Fault
}

// NewFaulty wraps inner with no faults armed.
func NewFaulty(inner FS) *Faulty {
	return &Faulty{inner: inner, crashAt: -1}
}

// Inject arms a fault rule. Rules are consulted in insertion order; the
// first live match fires.
func (f *Faulty) Inject(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = append(f.faults, fault)
}

// Clear disarms all fault rules (the crash point is kept).
func (f *Faulty) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = nil
}

// CrashAt arms the crash point: the operation with 0-based index n (and
// every operation after it) fails with ErrCrashed and does not run. A
// WriteFile at the crash point first persists a torn prefix of its data,
// so the sweep also covers partially written temp files. n < 0 disarms.
func (f *Faulty) CrashAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
	f.crashed = false
}

// Ops returns how many operations have been attempted so far (including
// faulted ones). Run a workload fault-free first to learn its op count,
// then sweep CrashAt over [0, Ops()).
func (f *Faulty) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point has been reached.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// TornLen is the number of bytes a torn WriteFile persists out of n.
func TornLen(n int) int { return n / 2 }

// gate runs the bookkeeping for one operation: crash-point check, then
// fault-rule matching. It returns the error to report (nil = perform the
// operation), and whether a torn prefix write should be persisted first.
func (f *Faulty) gate(op Op, paths ...string) (err error, torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed, false
	}
	idx := f.ops
	f.ops++
	if f.crashAt >= 0 && idx >= f.crashAt {
		f.crashed = true
		return ErrCrashed, op == OpWriteFile
	}
	for i := range f.faults {
		r := &f.faults[i]
		if r.Op != op || !matches(r.Path, paths) {
			continue
		}
		if r.Skip > 0 {
			r.Skip--
			return nil, false
		}
		if r.Count < 0 {
			continue // exhausted
		}
		if r.Count > 0 {
			r.Count--
			if r.Count == 0 {
				r.Count = -1 // mark exhausted; 0 means unlimited
			}
		}
		return r.Err, r.Torn && op == OpWriteFile
	}
	return nil, false
}

func matches(substr string, paths []string) bool {
	if substr == "" {
		return true
	}
	for _, p := range paths {
		if strings.Contains(p, substr) {
			return true
		}
	}
	return false
}

// MkdirAll implements FS.
func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := f.gate(OpMkdirAll, path); err != nil {
		return fmt.Errorf("mkdirall %s: %w", path, err)
	}
	return f.inner.MkdirAll(path, perm)
}

// ReadFile implements FS.
func (f *Faulty) ReadFile(path string) ([]byte, error) {
	if err, _ := f.gate(OpReadFile, path); err != nil {
		return nil, fmt.Errorf("readfile %s: %w", path, err)
	}
	return f.inner.ReadFile(path)
}

// WriteFile implements FS. An injected torn fault (and every WriteFile at
// the crash point) persists the first TornLen bytes through the inner FS
// before reporting the error, so the on-disk state a crashed write leaves
// behind is actually present for recovery code to trip over.
func (f *Faulty) WriteFile(path string, data []byte, perm fs.FileMode) error {
	err, torn := f.gate(OpWriteFile, path)
	if err == nil {
		return f.inner.WriteFile(path, data, perm)
	}
	if torn {
		_ = f.inner.WriteFile(path, data[:TornLen(len(data))], perm)
	}
	return fmt.Errorf("writefile %s: %w", path, err)
}

// Rename implements FS.
func (f *Faulty) Rename(oldpath, newpath string) error {
	if err, _ := f.gate(OpRename, oldpath, newpath); err != nil {
		return fmt.Errorf("rename %s: %w", oldpath, err)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *Faulty) Remove(path string) error {
	if err, _ := f.gate(OpRemove, path); err != nil {
		return fmt.Errorf("remove %s: %w", path, err)
	}
	return f.inner.Remove(path)
}

// ReadDir implements FS.
func (f *Faulty) ReadDir(path string) ([]fs.DirEntry, error) {
	if err, _ := f.gate(OpReadDir, path); err != nil {
		return nil, fmt.Errorf("readdir %s: %w", path, err)
	}
	return f.inner.ReadDir(path)
}

// Stat implements FS.
func (f *Faulty) Stat(path string) (fs.FileInfo, error) {
	if err, _ := f.gate(OpStat, path); err != nil {
		return nil, fmt.Errorf("stat %s: %w", path, err)
	}
	return f.inner.Stat(path)
}

// SyncDir implements FS.
func (f *Faulty) SyncDir(path string) error {
	if err, _ := f.gate(OpSyncDir, path); err != nil {
		return fmt.Errorf("syncdir %s: %w", path, err)
	}
	return f.inner.SyncDir(path)
}

var (
	_ FS = OS{}
	_ FS = (*Faulty)(nil)
)
