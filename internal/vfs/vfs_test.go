package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// The OS filesystem must round-trip file contents and survive the basic
// directory lifecycle the repository performs.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := OS{}
	sub := filepath.Join(dir, "a", "b")
	if err := fs.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(sub, "f.txt")
	if err := fs.WriteFile(p+".tmp", []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(p+".tmp", p); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(p)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	ents, err := fs.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "f.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if _, err := fs.Stat(p); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(p); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Stat after Remove = %v, want not-exist", err)
	}
}

// Injected faults must fire on the matching op/path, respect Skip and
// Count, and leave other operations untouched.
func TestFaultyTargetedInjection(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{})
	f.Inject(Fault{Op: OpWriteFile, Path: "victim", Err: syscall.ENOSPC, Skip: 1, Count: 1})

	victim := filepath.Join(dir, "victim.txt")
	other := filepath.Join(dir, "other.txt")

	// Skip: 1 lets the first matching write through.
	if err := f.WriteFile(victim, []byte("v1"), 0o644); err != nil {
		t.Fatalf("skipped call failed: %v", err)
	}
	// The second matching write fails with the injected errno.
	if err := f.WriteFile(victim, []byte("v2"), 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	// Count: 1 is now exhausted; the third write succeeds again.
	if err := f.WriteFile(victim, []byte("v3"), 0o644); err != nil {
		t.Fatalf("post-exhaustion call failed: %v", err)
	}
	// A non-matching path is never touched.
	if err := f.WriteFile(other, []byte("x"), 0o644); err != nil {
		t.Fatalf("non-matching call failed: %v", err)
	}
	if data, _ := f.ReadFile(victim); string(data) != "v3" {
		t.Fatalf("victim contents = %q, want v3", data)
	}
}

// A torn fault persists exactly the first TornLen bytes before failing.
func TestFaultyTornWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{})
	f.Inject(Fault{Op: OpWriteFile, Err: syscall.EIO, Torn: true, Count: 1})
	p := filepath.Join(dir, "torn.txt")
	payload := []byte("0123456789")
	if err := f.WriteFile(p, payload, 0o644); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := payload[:TornLen(len(payload))]; string(data) != string(want) {
		t.Fatalf("torn file holds %q, want %q", data, want)
	}
}

// After the crash point every operation fails with ErrCrashed and has no
// effect; a WriteFile at the crash point leaves a torn prefix.
func TestFaultyCrashPoint(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{})
	f.CrashAt(2)

	a := filepath.Join(dir, "a")
	b := filepath.Join(dir, "b")
	c := filepath.Join(dir, "c")
	if err := f.WriteFile(a, []byte("aa"), 0o644); err != nil { // op 0
		t.Fatal(err)
	}
	if err := f.WriteFile(b, []byte("bb"), 0o644); err != nil { // op 1
		t.Fatal(err)
	}
	// Op 2 is the crash point: torn prefix persisted, ErrCrashed reported.
	if err := f.WriteFile(c, []byte("cccc"), 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if !f.Crashed() {
		t.Fatal("Crashed() = false after crash point")
	}
	if data, _ := os.ReadFile(c); string(data) != "cc" {
		t.Fatalf("crash-point write left %q, want torn prefix \"cc\"", data)
	}
	// Everything after the crash is dead, even reads, and has no effect.
	if _, err := f.ReadFile(a); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash = %v, want ErrCrashed", err)
	}
	if err := f.Remove(a); !errors.Is(err, ErrCrashed) {
		t.Fatalf("remove after crash = %v, want ErrCrashed", err)
	}
	if _, err := os.Stat(a); err != nil {
		t.Fatalf("post-crash Remove must not run: %v", err)
	}
}

// Ops counts every attempted operation so a sweep can enumerate crash
// points; the same workload yields the same count.
func TestFaultyOpsDeterministic(t *testing.T) {
	run := func() int {
		dir := t.TempDir()
		f := NewFaulty(OS{})
		p := filepath.Join(dir, "x")
		_ = f.MkdirAll(dir, 0o755)
		_ = f.WriteFile(p+".tmp", []byte("v"), 0o644)
		_ = f.Rename(p+".tmp", p)
		_ = f.SyncDir(dir)
		_, _ = f.ReadFile(p)
		return f.Ops()
	}
	n1, n2 := run(), run()
	if n1 != n2 || n1 != 5 {
		t.Fatalf("op counts %d, %d; want 5, 5", n1, n2)
	}
}
