package faults

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"time"
)

// --- server side ------------------------------------------------------

// Handler wraps next with fault injection driven by inj. A nil injector
// returns next unchanged, so production servers pay nothing. Faults are
// applied around the real handler: ConnReset and Truncate abort the
// response (after the handler may already have committed its work — which
// is exactly the partial failure idempotent retries must survive),
// ServerError short-circuits with a synthesized 5xx, Latency and SlowBody
// delay delivery.
func Handler(inj Injector, next http.Handler) http.Handler {
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := inj.Decide(r.Method, r.URL.Path, Attempt(r.Header))
		switch d.Kind {
		case Latency:
			sleepOrDone(r, d.Delay)
			next.ServeHTTP(w, r)
		case ConnReset:
			// Abort before the handler runs: the request is never
			// processed and the client sees a dead connection.
			panic(http.ErrAbortHandler)
		case ServerError:
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(d.Status)
			_, _ = io.WriteString(w, `{"error":"injected fault: server error burst"}`)
		case Truncate:
			next.ServeHTTP(&truncatingWriter{ResponseWriter: w, remaining: d.TruncateAfter}, r)
		case SlowBody:
			next.ServeHTTP(&slowWriter{ResponseWriter: w, chunk: d.ChunkSize, delay: d.Delay, req: r}, r)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// truncatingWriter lets a bounded number of body bytes through, flushes
// them onto the wire, and then aborts the connection — the handler has run
// (and possibly committed), but the client never sees the full response.
type truncatingWriter struct {
	http.ResponseWriter
	remaining int
}

func (w *truncatingWriter) Write(p []byte) (int, error) {
	if len(p) <= w.remaining {
		n, err := w.ResponseWriter.Write(p)
		w.remaining -= n
		return n, err
	}
	n, _ := w.ResponseWriter.Write(p[:w.remaining])
	w.remaining -= n
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// Unwrap lets http.ResponseController reach Flush/deadline controls
// beneath the fault layer, so streaming (SSE) handlers work under
// injected truncation — the abort then lands mid-event, exactly the
// partial delivery a resuming subscriber must survive.
func (w *truncatingWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// slowWriter dribbles the response body out in small delayed chunks,
// modeling a slow or congested link. Delays stop once the request context
// is done so a cancelled client does not pin the handler.
type slowWriter struct {
	http.ResponseWriter
	chunk int
	delay time.Duration
	req   *http.Request
}

// Unwrap mirrors truncatingWriter.Unwrap for http.ResponseController.
func (w *slowWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *slowWriter) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := w.chunk
		if n > len(p) {
			n = len(p)
		}
		wrote, err := w.ResponseWriter.Write(p[:n])
		total += wrote
		if err != nil {
			return total, err
		}
		if f, ok := w.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		p = p[n:]
		if len(p) > 0 && !sleepOrDone(w.req, w.delay) {
			// Client gone; finish the write without further delays.
			wrote, err := w.ResponseWriter.Write(p)
			return total + wrote, err
		}
	}
	return total, nil
}

// sleepOrDone sleeps for d or until the request context is done, reporting
// whether the full delay elapsed.
func sleepOrDone(r *http.Request, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.Context().Done():
		return false
	}
}

// --- client side ------------------------------------------------------

// ErrInjectedReset is the transport error surfaced by a client-side
// ConnReset fault; it stands in for the ECONNRESET a real dropped
// connection produces.
var ErrInjectedReset = errors.New("faults: injected connection reset")

// RoundTripper injects faults on the client side of the wire, so retry
// behavior can be tested without a real lossy network: ConnReset becomes a
// transport error, ServerError a synthesized 5xx response, Truncate and
// SlowBody wrap the response body, Latency delays the round trip.
type RoundTripper struct {
	// Base performs the real round trip (nil: http.DefaultTransport).
	Base http.RoundTripper
	// Injector decides the fault per attempt (nil: no faults).
	Injector Injector
}

func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	base := rt.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if rt.Injector == nil {
		return base.RoundTrip(req)
	}
	d := rt.Injector.Decide(req.Method, req.URL.Path, Attempt(req.Header))
	switch d.Kind {
	case Latency:
		sleepOrDone(req, d.Delay)
		return base.RoundTrip(req)
	case ConnReset:
		if req.Body != nil {
			_ = req.Body.Close()
		}
		return nil, ErrInjectedReset
	case ServerError:
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		h := make(http.Header)
		h.Set("Retry-After", "0")
		h.Set("Content-Type", "application/json")
		body := `{"error":"injected fault: server error burst"}`
		return &http.Response{
			StatusCode:    d.Status,
			Status:        http.StatusText(d.Status),
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        h,
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case Truncate:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatingBody{inner: resp.Body, remaining: d.TruncateAfter}
		resp.ContentLength = -1
		return resp, nil
	case SlowBody:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &slowBody{inner: resp.Body, chunk: d.ChunkSize, delay: d.Delay}
		return resp, nil
	default:
		return base.RoundTrip(req)
	}
}

// truncatingBody yields a bounded prefix of the real body, then fails with
// io.ErrUnexpectedEOF — the reader-side shape of a cut connection.
type truncatingBody struct {
	inner     io.ReadCloser
	remaining int
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	if err == io.EOF {
		return n, io.EOF
	}
	if b.remaining <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatingBody) Close() error { return b.inner.Close() }

// slowBody delays each read, modeling a slow link on the receive side.
type slowBody struct {
	inner io.ReadCloser
	chunk int
	delay time.Duration
}

func (b *slowBody) Read(p []byte) (int, error) {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	if len(p) > b.chunk {
		p = p[:b.chunk]
	}
	return b.inner.Read(p)
}

func (b *slowBody) Close() error { return b.inner.Close() }
