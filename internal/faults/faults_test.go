package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// TestScheduleDeterministic: two schedules built from the same seed emit
// the same decision sequence; a different seed diverges.
func TestScheduleDeterministic(t *testing.T) {
	a := NewSchedule(Options{Seed: 7, Rate: 0.5})
	b := NewSchedule(Options{Seed: 7, Rate: 0.5})
	diverged := false
	c := NewSchedule(Options{Seed: 8, Rate: 0.5})
	for i := 0; i < 200; i++ {
		da := a.Decide("GET", "/x", 0)
		db := b.Decide("GET", "/x", 0)
		if da != db {
			t.Fatalf("decision %d: %+v != %+v with equal seeds", i, da, db)
		}
		if da != c.Decide("GET", "/x", 0) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical 200-decision sequences")
	}
}

// TestScheduleLivenessValves: attempts at or beyond SpareAttempts are never
// faulted, and fault runs never exceed MaxConsecutive.
func TestScheduleLivenessValves(t *testing.T) {
	s := NewSchedule(Options{Seed: 1, Rate: 1, SpareAttempts: 3, MaxConsecutive: 4})
	for i := 0; i < 50; i++ {
		if d := s.Decide("POST", "/x", 3); d.Kind != None {
			t.Fatalf("attempt 3 was faulted: %+v", d)
		}
		if d := s.Decide("POST", "/x", 99); d.Kind != None {
			t.Fatalf("attempt 99 was faulted: %+v", d)
		}
	}
	run := 0
	for i := 0; i < 1000; i++ {
		if s.Decide("GET", "/y", 0).Kind == None {
			run = 0
			continue
		}
		run++
		if run > 4 {
			t.Fatalf("run of %d consecutive faults exceeds MaxConsecutive", run)
		}
	}
	if s.Total() == 0 {
		t.Fatal("rate-1 schedule injected nothing")
	}
	if len(s.Counts()) == 0 {
		t.Fatal("Counts() empty after injections")
	}
}

// scripted is a deterministic Injector for tests: it plays back a fixed
// decision sequence, then returns None forever.
type scripted struct {
	mu   chan struct{}
	seq  []Decision
	next int
}

func newScripted(seq ...Decision) *scripted {
	s := &scripted{mu: make(chan struct{}, 1), seq: seq}
	s.mu <- struct{}{}
	return s
}

func (s *scripted) Decide(method, path string, attempt int) Decision {
	<-s.mu
	defer func() { s.mu <- struct{}{} }()
	if s.next >= len(s.seq) {
		return Decision{}
	}
	d := s.seq[s.next]
	s.next++
	return d
}

func (s *scripted) Counts() map[string]int64 { return nil }

// TestHandlerFaults drives each server-side fault kind through a real HTTP
// stack and checks the client-visible symptom.
func TestHandlerFaults(t *testing.T) {
	payload := `{"data":"` + string(make([]byte, 512)) + `"}`
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, payload)
	})

	inj := newScripted(
		Decision{Kind: ServerError, Status: 503},
		Decision{Kind: ConnReset},
		Decision{Kind: Truncate, TruncateAfter: 10},
		Decision{Kind: SlowBody, ChunkSize: 64, Delay: time.Millisecond},
		Decision{Kind: Latency, Delay: time.Millisecond},
	)
	ts := httptest.NewServer(Handler(inj, inner))
	defer ts.Close()

	// ServerError: synthesized 503 with Retry-After.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("server error fault: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	// ConnReset: the request fails outright.
	if _, err := http.Get(ts.URL); err == nil {
		t.Fatal("conn reset fault: request succeeded")
	}

	// Truncate: 200 but the body is cut short.
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil || len(body) >= len(payload) {
		t.Fatalf("truncate fault: err=%v, got %d of %d bytes", err, len(body), len(payload))
	}

	// SlowBody and Latency: the request still completes intact.
	for i := 0; i < 2; i++ {
		resp, err = http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(body) != payload {
			t.Fatalf("delayed response corrupted: err=%v, %d bytes", err, len(body))
		}
	}
}

// TestRoundTripperFaults drives each client-side fault kind.
func TestRoundTripperFaults(t *testing.T) {
	payload := `{"ok":true,"pad":"` + string(make([]byte, 256)) + `"}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, payload)
	}))
	defer ts.Close()

	inj := newScripted(
		Decision{Kind: ConnReset},
		Decision{Kind: ServerError, Status: 502},
		Decision{Kind: Truncate, TruncateAfter: 8},
		Decision{Kind: SlowBody, ChunkSize: 32, Delay: time.Millisecond},
		Decision{Kind: Latency, Delay: time.Millisecond},
	)
	client := &http.Client{Transport: &RoundTripper{Injector: inj}}

	if _, err := client.Get(ts.URL); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("conn reset: err = %v", err)
	}

	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 502 {
		t.Fatalf("server error: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) || len(body) > 8 {
		t.Fatalf("truncate: err=%v, %d bytes", err, len(body))
	}

	for i := 0; i < 2; i++ {
		resp, err = client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(body) != payload {
			t.Fatalf("delayed round trip corrupted: err=%v, %d bytes", err, len(body))
		}
	}
}

// TestAttemptHeader: spare attempts are honored end to end through the
// header constant.
func TestAttemptHeader(t *testing.T) {
	s := NewSchedule(Options{Seed: 3, Rate: 1, SpareAttempts: 2})
	ok := 0
	ts := httptest.NewServer(Handler(s, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ok++
		_, _ = io.WriteString(w, "{}")
	})))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set(HeaderRetryAttempt, strconv.Itoa(2))
	for i := 0; i < 5; i++ {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("spare attempt %d faulted: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("spare attempt got status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if ok != 5 {
		t.Fatalf("handler ran %d times, want 5", ok)
	}
}
