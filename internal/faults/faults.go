// Package faults is the fault-injection layer for the networked profile
// service: a deterministic, seeded schedule of injectable fault points that
// can be wired into either side of the wire — into the perfdmfd server as an
// http.Handler middleware (see Handler) and into the dmfclient transport as
// an http.RoundTripper (see RoundTripper).
//
// The injectable faults model the partial failures a shared performance
// repository sees in production:
//
//   - ConnReset — the connection dies mid-response;
//   - Truncate — the response body is cut short after a few bytes;
//   - Latency — extra delay before the request is handled;
//   - ServerError — a synthesized 5xx burst (500/502/503);
//   - SlowBody — the response body dribbles out in tiny delayed chunks.
//
// A Schedule draws decisions from a seeded PRNG, so a chaos run is a
// deterministic function of its seed (the assignment of decisions to
// concurrent requests still depends on arrival order, but the decision
// sequence itself does not). Two liveness valves make retry loops converge:
// attempts at or beyond SpareAttempts are never faulted, and no more than
// MaxConsecutive decisions in a row inject a fault.
package faults

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// HeaderRetryAttempt carries the client's zero-based retry attempt number,
// so both fault injectors and server metrics can distinguish first tries
// from retries.
const HeaderRetryAttempt = "X-Retry-Attempt"

// Attempt extracts the retry attempt number from request headers (0 when
// absent or malformed).
func Attempt(h http.Header) int {
	n, err := strconv.Atoi(h.Get(HeaderRetryAttempt))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Kind enumerates the injectable fault points.
type Kind int

const (
	None Kind = iota
	ConnReset
	Truncate
	Latency
	ServerError
	SlowBody
	numKinds
)

var kindNames = [numKinds]string{"none", "conn_reset", "truncate", "latency", "server_error", "slow_body"}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Decision is one injector verdict for one request attempt.
type Decision struct {
	Kind Kind
	// Delay is the added latency (Latency) or the per-chunk delay (SlowBody).
	Delay time.Duration
	// Status is the synthesized response status for ServerError.
	Status int
	// TruncateAfter is how many response-body bytes Truncate lets through.
	TruncateAfter int
	// ChunkSize is the SlowBody write granularity.
	ChunkSize int
}

// Injector decides the fault (if any) for one request attempt. attempt is
// the client's zero-based retry counter. Implementations must be safe for
// concurrent use.
type Injector interface {
	Decide(method, path string, attempt int) Decision
	// Counts snapshots how many faults of each kind have been injected,
	// keyed by Kind.String().
	Counts() map[string]int64
}

// Options parameterizes a Schedule. The zero value is usable: every fault
// kind, a 25% fault rate, small delays, and both liveness valves on.
type Options struct {
	// Seed makes the decision sequence reproducible (same seed, same
	// sequence).
	Seed int64
	// Rate is the per-request fault probability in [0, 1] (<= 0: 0.25).
	Rate float64
	// Kinds restricts which faults are injected (empty: all of them).
	Kinds []Kind
	// MaxDelay caps injected latency (<= 0: 5ms).
	MaxDelay time.Duration
	// SpareAttempts: attempts >= this value are never faulted, so a client
	// with more than SpareAttempts tries always converges (<= 0: 3).
	SpareAttempts int
	// MaxConsecutive caps how many decisions in a row may inject a fault
	// (<= 0: 4).
	MaxConsecutive int
}

// Schedule is the deterministic seeded Injector. It is safe for concurrent
// use; decisions are drawn from one mutex-guarded PRNG.
type Schedule struct {
	mu          sync.Mutex
	rng         *rand.Rand
	rate        float64
	kinds       []Kind
	maxDelay    time.Duration
	spare       int
	maxConsec   int
	consecutive int
	counts      [numKinds]int64
}

// NewSchedule builds a Schedule from opts.
func NewSchedule(opts Options) *Schedule {
	s := &Schedule{
		rng:       rand.New(rand.NewSource(opts.Seed)),
		rate:      opts.Rate,
		kinds:     opts.Kinds,
		maxDelay:  opts.MaxDelay,
		spare:     opts.SpareAttempts,
		maxConsec: opts.MaxConsecutive,
	}
	if s.rate <= 0 {
		s.rate = 0.25
	}
	if s.rate > 1 {
		s.rate = 1
	}
	if len(s.kinds) == 0 {
		s.kinds = []Kind{ConnReset, Truncate, Latency, ServerError, SlowBody}
	}
	if s.maxDelay <= 0 {
		s.maxDelay = 5 * time.Millisecond
	}
	if s.spare <= 0 {
		s.spare = 3
	}
	if s.maxConsec <= 0 {
		s.maxConsec = 4
	}
	return s
}

var serverErrorStatuses = []int{
	http.StatusInternalServerError,
	http.StatusBadGateway,
	http.StatusServiceUnavailable,
}

// Decide implements Injector.
func (s *Schedule) Decide(method, path string, attempt int) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	if attempt >= s.spare {
		s.consecutive = 0
		return Decision{}
	}
	if s.consecutive >= s.maxConsec {
		s.consecutive = 0
		return Decision{}
	}
	if s.rng.Float64() >= s.rate {
		s.consecutive = 0
		return Decision{}
	}
	k := s.kinds[s.rng.Intn(len(s.kinds))]
	s.consecutive++
	s.counts[k]++
	d := Decision{Kind: k}
	switch k {
	case Latency:
		d.Delay = time.Duration(1 + s.rng.Int63n(int64(s.maxDelay)))
	case ServerError:
		d.Status = serverErrorStatuses[s.rng.Intn(len(serverErrorStatuses))]
	case Truncate:
		d.TruncateAfter = s.rng.Intn(64)
	case SlowBody:
		d.Delay = time.Duration(1 + s.rng.Int63n(int64(s.maxDelay)/4+1))
		d.ChunkSize = 1 + s.rng.Intn(16)
	}
	return d
}

// Counts implements Injector.
func (s *Schedule) Counts() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64)
	for k := Kind(1); k < numKinds; k++ {
		if s.counts[k] > 0 {
			out[k.String()] = s.counts[k]
		}
	}
	return out
}

// Total returns how many faults have been injected so far.
func (s *Schedule) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for k := Kind(1); k < numKinds; k++ {
		n += s.counts[k]
	}
	return n
}
