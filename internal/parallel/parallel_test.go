package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	defer SetDefaultWorkers(0)

	SetDefaultWorkers(0)
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d, want 3", got)
	}
	if got := Workers(0); got != DefaultWorkers() {
		t.Errorf("Workers(0) = %d, want DefaultWorkers %d", got, DefaultWorkers())
	}
	SetDefaultWorkers(5)
	if got := DefaultWorkers(); got != 5 {
		t.Errorf("DefaultWorkers = %d after SetDefaultWorkers(5)", got)
	}
	if got := Workers(-1); got != 5 {
		t.Errorf("Workers(-1) = %d, want 5", got)
	}
	SetDefaultWorkers(-10) // negative resets to GOMAXPROCS
	if got := DefaultWorkers(); got < 1 {
		t.Errorf("DefaultWorkers = %d, want >= 1", got)
	}
}

func TestEachRunsAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 137
		hits := make([]int64, n)
		Each(n, workers, func(i int) { atomic.AddInt64(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, h)
			}
		}
	}
}

// TestEachWorkerOneIsSequential asserts the pool-size-1 path is the literal
// sequential loop: same goroutine, strict index order — bit-for-bit the
// behaviour of the code it replaces.
func TestEachWorkerOneIsSequential(t *testing.T) {
	var order []int
	Each(50, 1, func(i int) { order = append(order, i) }) // no locking: must be same goroutine
	if len(order) != 50 {
		t.Fatalf("ran %d items, want 50", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (workers=1 must run in index order)", i, v, i)
		}
	}
}

func TestEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in worker was swallowed")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	Each(64, 4, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	// Several items fail; the reported error must always be the
	// lowest-index one, regardless of scheduling. Run many rounds to give
	// the scheduler chances to misbehave.
	for round := 0; round < 50; round++ {
		err := ForEach(context.Background(), 64, 8, func(i int) error {
			if i%10 == 7 { // fails at 7, 17, 27, ...
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if err.Error() != "item 7 failed" {
			t.Fatalf("round %d: got %q, want the lowest-index error \"item 7 failed\"", round, err)
		}
	}
}

func TestForEachStopsClaimingAfterError(t *testing.T) {
	var ran int64
	sentinel := errors.New("stop")
	err := ForEach(context.Background(), 1000, 4, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			return sentinel
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if n := atomic.LoadInt64(&ran); n >= 1000 {
		t.Fatalf("all %d items ran after an early error; fan-out did not stop", n)
	}
}

func TestForEachCancellationMidFanOut(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	started := make(chan struct{})
	var once sync.Once
	err := func() error {
		go func() {
			<-started
			cancel()
		}()
		return ForEach(ctx, 10000, 4, func(i int) error {
			once.Do(func() { close(started) })
			atomic.AddInt64(&ran, 1)
			time.Sleep(100 * time.Microsecond)
			return nil
		})
	}()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&ran); n >= 10000 {
		t.Fatalf("all %d items ran despite mid-fan-out cancellation", n)
	}
}

func TestForEachSequentialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := ForEach(ctx, 100, 1, func(i int) error {
		ran++
		if i == 9 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 10 {
		t.Fatalf("ran %d items, want exactly 10 (sequential path stops at the check)", ran)
	}
}

func TestForEachCompletedWorkIgnoresLateCancel(t *testing.T) {
	// If every item ran before cancellation is observed, the call did all
	// its work and must report success.
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	err := ForEach(ctx, 8, 4, func(i int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	})
	cancel()
	if err != nil {
		t.Fatalf("err = %v, want nil for fully-completed work", err)
	}
	if ran != 8 {
		t.Fatalf("ran %d, want 8", ran)
	}
}

func TestForEachNilContext(t *testing.T) {
	if err := ForEach(nil, 16, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		got, err := Map(context.Background(), 100, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapWorkerOneBitForBit: Map with one worker must produce byte-identical
// results to the plain sequential loop, including partial output on error.
func TestMapWorkerOneBitForBit(t *testing.T) {
	fn := func(i int) (string, error) {
		if i == 5 {
			return "", fmt.Errorf("bad %d", i)
		}
		return fmt.Sprintf("v%03d", i), nil
	}
	// Reference: the sequential loop Map replaces.
	want := make([]string, 10)
	var wantErr error
	for i := 0; i < 10; i++ {
		v, err := fn(i)
		if err != nil {
			wantErr = err
			break
		}
		want[i] = v
	}
	got, gotErr := Map(context.Background(), 10, 1, fn)
	if (gotErr == nil) != (wantErr == nil) || (gotErr != nil && gotErr.Error() != wantErr.Error()) {
		t.Fatalf("err = %v, want %v", gotErr, wantErr)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMapPartialResultsOnError(t *testing.T) {
	got, err := Map(context.Background(), 20, 4, func(i int) (int, error) {
		if i == 10 {
			return 0, errors.New("mid failure")
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if len(got) != 20 {
		t.Fatalf("len = %d, want full-length slice with partial results", len(got))
	}
	// Items before the failure index are guaranteed complete only in the
	// sequential path; here just check the slice shape and that completed
	// slots carry the right value.
	for i, v := range got {
		if v != 0 && v != i+1 {
			t.Fatalf("got[%d] = %d, want 0 or %d", i, v, i+1)
		}
	}
}

func TestEachZeroAndNegativeN(t *testing.T) {
	ran := false
	Each(0, 4, func(int) { ran = true })
	Each(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
	if err := ForEach(context.Background(), 0, 4, func(int) error { return errors.New("x") }); err != nil {
		t.Fatalf("ForEach(0 items) = %v", err)
	}
}

func TestLimiterBoundsConcurrency(t *testing.T) {
	l := NewLimiter(3)
	if l.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", l.Cap())
	}
	var (
		mu      sync.Mutex
		cur     int
		highest int
	)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			mu.Lock()
			cur++
			if cur > highest {
				highest = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			l.Release()
		}()
	}
	wg.Wait()
	if highest > 3 {
		t.Fatalf("observed %d concurrent holders, cap 3", highest)
	}
	if l.InUse() != 0 {
		t.Fatalf("InUse = %d after all released", l.InUse())
	}
}

func TestLimiterAcquireRespectsContext(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Acquire(ctx); err == nil {
		t.Fatal("Acquire on a full limiter with cancelled context must fail")
	}
	l.Release()
}

func TestLimiterTryAcquire(t *testing.T) {
	l := NewLimiter(1)
	if !l.TryAcquire() {
		t.Fatal("first TryAcquire should succeed")
	}
	if l.TryAcquire() {
		t.Fatal("second TryAcquire should fail while slot held")
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("TryAcquire after Release should succeed")
	}
	l.Release()
}

func TestLimiterReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire must panic")
		}
	}()
	NewLimiter(2).Release()
}

func TestLimiterDefaultCap(t *testing.T) {
	SetDefaultWorkers(7)
	defer SetDefaultWorkers(0)
	if got := NewLimiter(0).Cap(); got != 7 {
		t.Fatalf("Cap = %d, want DefaultWorkers (7)", got)
	}
}

func TestLimiterAcquireTimeout(t *testing.T) {
	l := NewLimiter(1)

	// Free slot: acquired immediately even with wait 0.
	if err := l.AcquireTimeout(context.Background(), 0); err != nil {
		t.Fatalf("AcquireTimeout on free limiter: %v", err)
	}

	// Saturated, no admission window: sheds with ErrSaturated.
	if err := l.AcquireTimeout(context.Background(), 0); !errors.Is(err, ErrSaturated) {
		t.Fatalf("AcquireTimeout(wait=0) on full limiter = %v, want ErrSaturated", err)
	}

	// Saturated, short window, nothing frees: sheds after the window.
	if err := l.AcquireTimeout(context.Background(), 5*time.Millisecond); !errors.Is(err, ErrSaturated) {
		t.Fatalf("AcquireTimeout(5ms) on full limiter = %v, want ErrSaturated", err)
	}

	// Caller cancellation wins over the admission window.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.AcquireTimeout(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("AcquireTimeout with cancelled ctx = %v, want context.Canceled", err)
	}

	// A slot freed within the window is acquired.
	done := make(chan error, 1)
	go func() { done <- l.AcquireTimeout(context.Background(), time.Second) }()
	time.Sleep(10 * time.Millisecond)
	l.Release()
	if err := <-done; err != nil {
		t.Fatalf("AcquireTimeout after Release: %v", err)
	}
	l.Release()
}
