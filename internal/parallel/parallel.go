// Package parallel is the repo's worker-pool / fan-out substrate: a small
// set of primitives for running N independent work items on a bounded set
// of goroutines, with context cancellation and deterministic error
// collection.
//
// Design rules, shared by every caller in this repository:
//
//   - Bounded: never more goroutines than the worker count, which defaults
//     to GOMAXPROCS and is capped by the item count.
//   - Deterministic degradation: a worker count of 1 (or a single item)
//     runs the loop inline on the calling goroutine, in index order — the
//     exact sequential code path, bit for bit.
//   - Deterministic errors: when several items fail, the reported error is
//     always the one with the lowest index, regardless of goroutine
//     scheduling. Workers claim indices in ascending order from a shared
//     atomic counter and record at most one error each; the merge picks
//     the minimum index.
//   - Share nothing, then merge: callbacks receive only the item index and
//     must write results into per-index slots (as Map does). Panics in
//     callbacks are captured and re-raised on the calling goroutine so a
//     crashing worker cannot deadlock the pool.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"perfknow/internal/obs"
)

// Pool telemetry. Counters are coarse-grained by design: one update per
// fan-out call and one per worker goroutine — never per item — so
// instrumentation adds nothing to the index-claiming hot path that
// BenchmarkParallelSpeedup measures.
var (
	fanoutsTotal  atomic.Int64 // Each/ForEach invocations
	workersTotal  atomic.Int64 // worker goroutines ever started
	workersActive atomic.Int64 // worker goroutines currently running
)

// RegisterMetrics exposes the pool's utilization through reg:
// `parallel_fanouts_total`, `parallel_workers_total` (both monotonic) and
// `parallel_workers_active` (instantaneous), all read at snapshot time.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("parallel_fanouts_total", func() float64 { return float64(fanoutsTotal.Load()) })
	reg.GaugeFunc("parallel_workers_total", func() float64 { return float64(workersTotal.Load()) })
	reg.GaugeFunc("parallel_workers_active", func() float64 { return float64(workersActive.Load()) })
}

// workerSpan brackets one worker goroutine's lifetime (inline loops count
// as one worker: the caller's goroutine is doing the work).
func workerSpan() func() {
	workersTotal.Add(1)
	workersActive.Add(1)
	return func() { workersActive.Add(-1) }
}

// defaultWorkers holds the process-wide default worker count. Zero means
// "use GOMAXPROCS at call time". It is set by the CLIs' -j flag.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count used when a
// call site passes workers <= 0. n <= 0 resets to GOMAXPROCS. Safe for
// concurrent use.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the current process-wide default worker count:
// the value of the last SetDefaultWorkers call, or GOMAXPROCS.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Workers resolves a per-call worker request: n > 0 is honoured as-is,
// anything else falls back to DefaultWorkers.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return DefaultWorkers()
}

// capped bounds the worker count by the item count.
func capped(workers, n int) int {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// panicValue carries a captured worker panic to the calling goroutine.
type panicValue struct{ v any }

// Each runs fn(i) for every i in [0, n), using at most `workers`
// goroutines (workers <= 0 means DefaultWorkers). It returns after all
// calls complete. With one worker or one item the loop runs inline in
// index order. A panic in fn is re-raised on the calling goroutine after
// the remaining workers drain.
func Each(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	fanoutsTotal.Add(1)
	w := capped(workers, n)
	if w == 1 {
		defer workerSpan()()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
		pmu  sync.Mutex
		pval *panicValue
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer workerSpan()()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if pval == nil {
						pval = &panicValue{r}
					}
					pmu.Unlock()
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if pval != nil {
		panic(pval.v)
	}
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers` goroutines
// and returns the first error by index order. After any error (or context
// cancellation) workers stop claiming new indices; in-flight calls finish.
// The returned error is deterministic: among all recorded failures it is
// the one with the lowest index, independent of scheduling. If ctx is
// cancelled before all items are claimed and no item failed, ctx.Err() is
// returned. With one worker or one item the loop runs inline and returns
// on the first error, exactly like the sequential code it replaces.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	fanoutsTotal.Add(1)
	w := capped(workers, n)
	if w == 1 {
		defer workerSpan()()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	type indexedErr struct {
		idx int
		err error
	}
	var (
		next    int64 = -1
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstE  *indexedErr
		pval    *panicValue
		stopped atomic.Bool
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstE == nil || i < firstE.idx {
			firstE = &indexedErr{i, err}
		}
		mu.Unlock()
		stopped.Store(true)
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer workerSpan()()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if pval == nil {
								pval = &panicValue{r}
							}
							mu.Unlock()
							stopped.Store(true)
						}
					}()
					return fn(i)
				}()
				if err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if pval != nil {
		panic(pval.v)
	}
	if firstE != nil {
		return firstE.err
	}
	// Report cancellation only when it actually skipped work; if every
	// index was claimed (and therefore ran to completion) the call did
	// everything it was asked to, matching the sequential path which only
	// checks the context before each item.
	if int(atomic.LoadInt64(&next)) < n-1 {
		return ctx.Err()
	}
	return nil
}

// Limiter is a counting semaphore bounding concurrent work admitted from
// outside the pool primitives — e.g. a server capping how many requests may
// run analysis at once. It complements Each/ForEach (which bound fan-out
// within one call) by bounding concurrency across independent callers.
type Limiter struct {
	sem     chan struct{}
	waiting atomic.Int64
}

// NewLimiter returns a limiter admitting at most n concurrent holders.
// n <= 0 falls back to DefaultWorkers, so a server's -j flag (routed
// through SetDefaultWorkers) caps request-level concurrency the same way
// it caps analysis fan-out.
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		n = DefaultWorkers()
	}
	return &Limiter{sem: make(chan struct{}, n)}
}

// Cap returns the maximum number of concurrent holders.
func (l *Limiter) Cap() int { return cap(l.sem) }

// Acquire blocks until a slot is free or ctx is done, returning ctx.Err()
// in the latter case. Every successful Acquire must be paired with exactly
// one Release.
func (l *Limiter) Acquire(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	l.waiting.Add(1)
	defer l.waiting.Add(-1)
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ErrSaturated is returned by AcquireTimeout when no slot frees up within
// the admission window. Callers (e.g. a server) use it to distinguish
// "shed this work" from caller cancellation.
var ErrSaturated = errors.New("parallel: limiter saturated")

// AcquireTimeout takes a slot, waiting at most wait for one to free up:
// it returns nil on success, ErrSaturated when the admission window
// expires, and ctx.Err() when the caller gives up first. wait <= 0 means
// "don't wait at all" — a pure TryAcquire with error reporting. This is
// the load-shedding primitive: instead of queueing until the caller's
// deadline, a saturated server can bound admission latency and tell the
// client to back off.
func (l *Limiter) AcquireTimeout(ctx context.Context, wait time.Duration) error {
	if l.TryAcquire() {
		return nil
	}
	if wait <= 0 {
		return ErrSaturated
	}
	if ctx == nil {
		ctx = context.Background()
	}
	l.waiting.Add(1)
	defer l.waiting.Add(-1)
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return ErrSaturated
	}
}

// TryAcquire takes a slot without blocking, reporting whether it succeeded.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by Acquire or TryAcquire. Releasing more
// than was acquired panics: that is always a caller bug.
func (l *Limiter) Release() {
	select {
	case <-l.sem:
	default:
		panic("parallel: Limiter.Release without matching Acquire")
	}
}

// InUse returns the number of currently held slots (racy by nature; for
// metrics and tests).
func (l *Limiter) InUse() int { return len(l.sem) }

// Waiting returns the number of callers currently blocked in Acquire or
// AcquireTimeout — the admission queue depth (racy by nature; for
// metrics and tests).
func (l *Limiter) Waiting() int { return int(l.waiting.Load()) }

// Map runs fn(i) for every i in [0, n) and returns the results in index
// order. Error and cancellation semantics match ForEach; on error the
// partial results slice is still returned (slots whose fn completed are
// filled, others hold zero values), mirroring sequential loops that
// return partial output plus the first error.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
