package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"perfknow/internal/obs"
)

// TestPoolMetricsRegistered: RegisterMetrics exposes the pool's coarse
// counters through a registry snapshot.
func TestPoolMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)

	beforeFan := fanoutsTotal.Load()
	beforeWork := workersTotal.Load()
	Each(64, 4, func(i int) {})
	if err := ForEach(context.Background(), 64, 4, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Gauges["parallel_fanouts_total"]; got < float64(beforeFan+2) {
		t.Fatalf("parallel_fanouts_total = %v, want >= %d", got, beforeFan+2)
	}
	if got := snap.Gauges["parallel_workers_total"]; got < float64(beforeWork+8) {
		t.Fatalf("parallel_workers_total = %v, want >= %d", got, beforeWork+8)
	}
	if got := snap.Gauges["parallel_workers_active"]; got != float64(workersActive.Load()) {
		t.Fatalf("parallel_workers_active = %v, want %d", got, workersActive.Load())
	}
}

// TestPoolMetricsConcurrentWithSnapshots is the race regression test for
// the pool instrumentation: fan-outs and registry snapshots interleave
// from many goroutines. Run with -race.
func TestPoolMetricsConcurrentWithSnapshots(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = reg.Snapshot()
		}
	}()
	var total atomic.Int64
	for round := 0; round < 8; round++ {
		Each(256, 4, func(i int) { total.Add(1) })
	}
	stop.Store(true)
	wg.Wait()
	if total.Load() != 8*256 {
		t.Fatalf("items run = %d", total.Load())
	}
}

// BenchmarkEachInstrumented measures the fan-out hot path with the pool
// metrics registered and a concurrent snapshot reader — the contention
// guard for BenchmarkParallelSpeedup. The per-item loop must stay free of
// instrumentation (counters update once per fan-out / per worker), so this
// benchmark's per-item cost should match an uninstrumented pool's. Run
// with -race to prove the instrumentation adds no data races either:
//
//	go test -race -run='^$' -bench=BenchmarkEachInstrumented ./internal/parallel
func BenchmarkEachInstrumented(b *testing.B) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = reg.Snapshot()
		}
	}()
	b.ResetTimer()
	var sink atomic.Int64
	for i := 0; i < b.N; i++ {
		Each(1024, 8, func(j int) { sink.Add(1) })
	}
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
	if sink.Load() == 0 {
		b.Fatal("no work ran")
	}
}
