package analysis

import (
	"testing"

	"perfknow/internal/perfdmf"
)

// Satellite regression for the aliasing audit: derived trials must not share
// backing storage with their sources. Mutating every reachable slice and map
// of each op's output must leave the source trial bit-identical — under both
// engines, since the columnar path rebuilds trials from flat blocks and
// could easily leak subslice views of a shared buffer.
func TestDerivedTrialsDoNotAliasSource(t *testing.T) {
	build := func() *perfdmf.Trial {
		tr := perfdmf.NewTrial("app", "exp", "src", 4)
		tr.AddMetric(perfdmf.TimeMetric)
		tr.AddMetric("PAPI_FP_OPS")
		tr.Metadata["host"] = "n0"
		for _, name := range []string{"main", "compute", "io", "main => compute"} {
			e := tr.EnsureEvent(name)
			e.Groups = []string{"G"}
			for th := 0; th < 4; th++ {
				e.Calls[th] = float64(th + 1)
				e.SetValue(perfdmf.TimeMetric, th, float64(10*th), float64(th))
				e.SetValue("PAPI_FP_OPS", th, float64(100*th), float64(2*th))
			}
		}
		return tr
	}

	// vandalize overwrites everything reachable from a trial.
	vandalize := func(out *perfdmf.Trial) {
		if out == nil {
			return
		}
		for k := range out.Metadata {
			out.Metadata[k] = "clobbered"
		}
		for i := range out.Metrics {
			out.Metrics[i] = "clobbered"
		}
		for _, e := range out.Events {
			e.Name = "clobbered"
			for i := range e.Groups {
				e.Groups[i] = "clobbered"
			}
			e.Groups = append(e.Groups, "grown")
			for i := range e.Calls {
				e.Calls[i] = -999
			}
			e.Calls = append(e.Calls, -1)
			for _, m := range []map[string][]float64{e.Inclusive, e.Exclusive} {
				for k, vals := range m {
					for i := range vals {
						vals[i] = -999
					}
					m[k] = append(vals, -1)
				}
			}
		}
	}

	for _, engine := range []struct {
		name string
		row  bool
	}{{"columnar", false}, {"row", true}} {
		t.Run(engine.name, func(t *testing.T) {
			defer UseRowOriented(false)
			UseRowOriented(engine.row)

			src := build()
			sib := build()
			sib.Name = "sib"
			before := dumpTrial(src)
			beforeSib := dumpTrial(sib)

			outs := make([]*perfdmf.Trial, 0, 8)
			if out, _, err := DeriveMetric(src, perfdmf.TimeMetric, "PAPI_FP_OPS", OpDivide); err != nil {
				t.Fatalf("DeriveMetric: %v", err)
			} else {
				outs = append(outs, out)
			}
			if out, _, err := DeriveScaled(src, perfdmf.TimeMetric, 2); err != nil {
				t.Fatalf("DeriveScaled: %v", err)
			} else {
				outs = append(outs, out)
			}
			if out, _, err := DeriveSum(src, src.Metrics); err != nil {
				t.Fatalf("DeriveSum: %v", err)
			} else {
				outs = append(outs, out)
			}
			outs = append(outs, Reduce(src, ReduceMean))
			outs = append(outs, ExtractEvents(src, []string{"main", "io"}))
			if out, err := DiffTrials(src, sib); err != nil {
				t.Fatalf("DiffTrials: %v", err)
			} else {
				outs = append(outs, out)
			}
			if out, err := MergeTrials([]*perfdmf.Trial{src, sib}); err != nil {
				t.Fatalf("MergeTrials: %v", err)
			} else {
				outs = append(outs, out)
			}

			for _, out := range outs {
				vandalize(out)
			}
			if got := dumpTrial(src); got != before {
				t.Errorf("source trial mutated through a derived trial\nbefore:\n%s\nafter:\n%s", before, got)
			}
			if got := dumpTrial(sib); got != beforeSib {
				t.Errorf("sibling trial mutated through a derived trial\nbefore:\n%s\nafter:\n%s", beforeSib, got)
			}
		})
	}
}

// Columns↔Trial conversions in the analysis layer must also deep-copy:
// mutating a trial obtained from a Columns view of a source must not write
// through to that source.
func TestColumnsViewDoesNotAliasSource(t *testing.T) {
	src := perfdmf.NewTrial("app", "exp", "src", 2)
	src.AddMetric(perfdmf.TimeMetric)
	e := src.EnsureEvent("main")
	e.SetValue(perfdmf.TimeMetric, 0, 7, 7)
	e.SetValue(perfdmf.TimeMetric, 1, 9, 9)
	before := dumpTrial(src)

	c, err := perfdmf.ColumnsFromTrial(src)
	if err != nil {
		t.Fatal(err)
	}
	c.Calls[0] = -1
	c.Cols[0].Inc[0] = -1
	c.Cols[0].Exc[1] = -1
	c.Metadata["x"] = "y"
	if got := dumpTrial(src); got != before {
		t.Errorf("ColumnsFromTrial aliased the source:\nbefore:\n%s\nafter:\n%s", before, got)
	}
}
