package analysis

import (
	"fmt"
	"math"
	"sync/atomic"

	"perfknow/internal/parallel"
	"perfknow/internal/perfdmf"
)

// Clustering is the result of k-means over the threads of a trial: each
// thread is a feature vector of per-event exclusive metric values, and the
// clustering partitions threads with similar behaviour — PerfExplorer's
// classic technique for spotting groups of threads doing different work
// (e.g. master vs workers, or imbalanced schedules).
type Clustering struct {
	K          int
	Events     []string    // feature order
	Assignment []int       // thread → cluster
	Centroids  [][]float64 // cluster → feature vector
	Sizes      []int       // cluster → member count
	Inertia    float64     // sum of squared distances to assigned centroids
}

// KMeansRow is the row-oriented oracle for KMeans. Both engines share
// kmeansCore; they differ only in how the feature matrix is gathered.
func KMeansRow(t *perfdmf.Trial, metric string, k int, maxIter int) (*Clustering, error) {
	if k <= 0 {
		return nil, fmt.Errorf("analysis: k must be positive, got %d", k)
	}
	if k > t.Threads {
		return nil, fmt.Errorf("analysis: k=%d exceeds thread count %d", k, t.Threads)
	}
	var events []string
	for _, e := range t.Events {
		if !e.IsCallpath() && len(e.Exclusive[metric]) == t.Threads {
			events = append(events, e.Name)
		}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("analysis: trial %q has no events with metric %q", t.Name, metric)
	}

	// Build feature matrix: threads × events. Gather the metric columns
	// first (Trial.Event builds a lazy index, so resolve names up front),
	// then fill the independent rows in parallel.
	cols := make([][]float64, len(events))
	for j, name := range events {
		cols[j] = t.Event(name).Exclusive[metric]
	}
	feats := make([][]float64, t.Threads)
	parallel.Each(t.Threads, 0, func(th int) {
		row := make([]float64, len(events))
		for j := range cols {
			row[j] = cols[j][th]
		}
		feats[th] = row
	})
	return kmeansCore(events, feats, k, maxIter)
}

// kmeansCore runs deterministic k-means over a prebuilt threads×events
// feature matrix. Shared by the row and columnar engines: given the same
// matrix, every float operation happens in the same order, so the two
// engines agree bit for bit.
func kmeansCore(events []string, feats [][]float64, k, maxIter int) (*Clustering, error) {
	if maxIter <= 0 {
		maxIter = 50
	}

	// Farthest-point initialization.
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64(nil), feats[0]...))
	for len(centroids) < k {
		bestIdx, bestDist := 0, -1.0
		for i, f := range feats {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := sqDist(f, c); dd < d {
					d = dd
				}
			}
			if d > bestDist {
				bestDist, bestIdx = d, i
			}
		}
		centroids = append(centroids, append([]float64(nil), feats[bestIdx]...))
	}

	assign := make([]int, len(feats))
	for iter := 0; iter < maxIter; iter++ {
		// Assignment: each point depends only on the (read-only) centroids
		// and writes its own slot, so the rows fan out. The change flag is
		// an OR across points — order-independent, hence deterministic.
		var changed atomic.Bool
		parallel.Each(len(feats), 0, func(i int) {
			f := feats[i]
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(f, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed.Store(true)
			}
		})
		// Recompute centroids sequentially: the summation order of the
		// floating-point accumulation is part of the deterministic contract.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, len(events))
		}
		for i, f := range feats {
			counts[assign[i]]++
			for j, v := range f {
				sums[assign[i]][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // keep the old centroid for empty clusters
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if !changed.Load() {
			break
		}
	}

	cl := &Clustering{K: k, Events: events, Assignment: assign, Centroids: centroids, Sizes: make([]int, k)}
	for i, f := range feats {
		cl.Sizes[assign[i]]++
		cl.Inertia += sqDist(f, centroids[assign[i]])
	}
	return cl, nil
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
