package analysis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"perfknow/internal/parallel"
	"perfknow/internal/perfdmf"
)

// This file is the columnar engine: the public analysis operations pivot
// the trial into a perfdmf.Columns view and run tight loops over the flat
// blocks, instead of chasing map[string][]float64 cells per event. The
// original row-oriented implementations are retained, exported with a Row
// suffix, as the differential oracle — the same pattern PR 6 used for the
// compiled script interpreter vs. the tree-walker. The differential suite
// (differential_test.go) proves the two engines byte-identical over every
// operation, so the contract here is strict: identical float values in
// identical summation order, identical presence of metrics on events,
// identical error messages.
//
// Every columnar operation falls back to its row oracle when the trial
// cannot be pivoted (malformed per-thread slices, duplicate event names —
// shapes Validate rejects anyway), so the dispatchers never change
// behavior, only speed.

// rowOriented selects the retained row-oriented oracle implementations
// for every dispatching operation. Columnar is the default engine.
var rowOriented atomic.Bool

// UseRowOriented switches every analysis operation to the row-oriented
// oracle engine (true) or the columnar engine (false, the default). The
// oracle is retained for differential testing and benchmarking, not as a
// production mode.
func UseRowOriented(v bool) { rowOriented.Store(v) }

// RowOrientedEngine reports whether the row-oriented oracle is selected.
func RowOrientedEngine() bool { return rowOriented.Load() }

// ensureCol returns the metric's column, creating an all-present one if
// missing, and forcing presence everywhere if it exists (the columnar
// equivalent of writing the metric to every event via SetValue).
func ensureCol(c *perfdmf.Columns, metric string) *perfdmf.MetricColumn {
	if col := c.Col(metric); col != nil {
		for i := range col.IncPresent {
			col.IncPresent[i] = true
			col.ExcPresent[i] = true
		}
		return col
	}
	return c.AddColumn(metric)
}

// buildColumns allocates an output Columns shell: the metric list is kept
// verbatim (mirroring the row ops that copy Metrics directly), columns are
// deduplicated, zero-filled and all-present — exactly what EnsureEvent
// produces for registered metrics on the row side.
func buildColumns(app, experiment, name string, threads int, metrics, events []string) *perfdmf.Columns {
	c := perfdmf.NewColumns(app, experiment, name, threads)
	c.Metrics = append([]string(nil), metrics...)
	c.EventNames = append([]string(nil), events...)
	c.Groups = make([][]string, len(events))
	c.Calls = make([]float64, len(events)*threads)
	seen := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		if seen[m] {
			continue
		}
		seen[m] = true
		c.AddColumn(m)
	}
	return c
}

func copyMetadata(src map[string]string, extra int) map[string]string {
	out := make(map[string]string, len(src)+extra)
	for k, v := range src {
		out[k] = v
	}
	return out
}

// DeriveMetric adds a new metric computed element-wise from two existing
// metrics to a copy of the trial, returning the copy and the new metric's
// name. Division by zero yields zero rather than infinity, because profile
// cells with no samples are legitimately zero.
func DeriveMetric(t *perfdmf.Trial, lhs, rhs string, op Op) (*perfdmf.Trial, string, error) {
	if !t.HasMetric(lhs) {
		return nil, "", fmt.Errorf("analysis: trial %q has no metric %q", t.Name, lhs)
	}
	if !t.HasMetric(rhs) {
		return nil, "", fmt.Errorf("analysis: trial %q has no metric %q", t.Name, rhs)
	}
	if rowOriented.Load() {
		return DeriveMetricRow(t, lhs, rhs, op)
	}
	c, err := perfdmf.ColumnsFromTrial(t)
	if err != nil {
		return DeriveMetricRow(t, lhs, rhs, op)
	}
	name := DeriveMetricName(lhs, rhs, op)
	// The pivot is already a private deep copy, so it doubles as the
	// output. Clone zero-fills every registered metric on every event;
	// MarkRegisteredPresent reproduces that.
	c.MarkRegisteredPresent()
	ensureCol(c, name)
	dst, lc, rc := c.Col(name), c.Col(lhs), c.Col(rhs)
	for i := range dst.Inc {
		dst.Inc[i] = op.apply(lc.Inc[i], rc.Inc[i])
		dst.Exc[i] = op.apply(lc.Exc[i], rc.Exc[i])
	}
	return c.Trial(), name, nil
}

// DeriveScaled adds metric*scale as a new metric named like "(M * 2.5)".
func DeriveScaled(t *perfdmf.Trial, metric string, scale float64) (*perfdmf.Trial, string, error) {
	if !t.HasMetric(metric) {
		return nil, "", fmt.Errorf("analysis: trial %q has no metric %q", t.Name, metric)
	}
	if rowOriented.Load() {
		return DeriveScaledRow(t, metric, scale)
	}
	c, err := perfdmf.ColumnsFromTrial(t)
	if err != nil {
		return DeriveScaledRow(t, metric, scale)
	}
	name := "(" + metric + " * " + strconv.FormatFloat(scale, 'g', -1, 64) + ")"
	c.MarkRegisteredPresent()
	ensureCol(c, name)
	dst, src := c.Col(name), c.Col(metric)
	for i := range dst.Inc {
		dst.Inc[i] = src.Inc[i] * scale
		dst.Exc[i] = src.Exc[i] * scale
	}
	return c.Trial(), name, nil
}

// DeriveSum adds metric(a)+metric(b)+... as one combined metric.
func DeriveSum(t *perfdmf.Trial, metrics []string) (*perfdmf.Trial, string, error) {
	if len(metrics) == 0 {
		return nil, "", fmt.Errorf("analysis: DeriveSum needs at least one metric")
	}
	for _, m := range metrics {
		if !t.HasMetric(m) {
			return nil, "", fmt.Errorf("analysis: trial %q has no metric %q", t.Name, m)
		}
	}
	if rowOriented.Load() {
		return DeriveSumRow(t, metrics)
	}
	c, err := perfdmf.ColumnsFromTrial(t)
	if err != nil {
		return DeriveSumRow(t, metrics)
	}
	name := "(sum"
	for _, m := range metrics {
		name += " " + m
	}
	name += ")"
	c.MarkRegisteredPresent()
	ensureCol(c, name)
	dst := c.Col(name)
	srcs := make([]*perfdmf.MetricColumn, len(metrics))
	for i, m := range metrics {
		srcs[i] = c.Col(m)
	}
	// Accumulation order per cell matches the row loop: metrics in
	// argument order, starting from zero.
	for i := range dst.Inc {
		var inc, exc float64
		for _, src := range srcs {
			inc += src.Inc[i]
			exc += src.Exc[i]
		}
		dst.Inc[i] = inc
		dst.Exc[i] = exc
	}
	return c.Trial(), name, nil
}

// Reduce collapses a trial to a single synthetic "thread" holding the
// chosen statistic of every (event, metric) cell — the TrialMeanResult /
// TrialTotalResult views of PerfExplorer.
func Reduce(t *perfdmf.Trial, r Reduction) *perfdmf.Trial {
	if rowOriented.Load() {
		return ReduceRow(t, r)
	}
	c, err := perfdmf.ColumnsFromTrial(t)
	if err != nil {
		return ReduceRow(t, r)
	}
	th := c.Threads
	out := buildColumns(t.App, t.Experiment, t.Name, 1, t.Metrics, c.EventNames)
	out.Metadata = copyMetadata(c.Metadata, 1)
	out.Metadata["reduction"] = r.String()
	for ev := range c.EventNames {
		out.Groups[ev] = append([]string(nil), c.Groups[ev]...)
		out.Calls[ev] = reduce(c.Calls[ev*th:(ev+1)*th], r)
	}
	for _, m := range out.Metrics {
		src, dst := c.Col(m), out.Col(m)
		if src == nil {
			continue
		}
		for ev := range c.EventNames {
			// An absent metric reduces to 0 on the row side
			// (reduce(nil)); the zero-filled block is already 0.
			if src.IncPresent[ev] {
				dst.Inc[ev] = reduce(src.Inc[ev*th:(ev+1)*th], r)
			}
			if src.ExcPresent[ev] {
				dst.Exc[ev] = reduce(src.Exc[ev*th:(ev+1)*th], r)
			}
		}
	}
	return out.Trial()
}

// ExtractEvents returns a copy of the trial restricted to the named events.
func ExtractEvents(t *perfdmf.Trial, names []string) *perfdmf.Trial {
	if rowOriented.Load() {
		return ExtractEventsRow(t, names)
	}
	c, err := perfdmf.ColumnsFromTrial(t)
	if err != nil {
		return ExtractEventsRow(t, names)
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var kept []int
	var keptNames []string
	for ev, name := range c.EventNames {
		if want[name] {
			kept = append(kept, ev)
			keptNames = append(keptNames, name)
		}
	}
	th := c.Threads
	out := buildColumns(t.App, t.Experiment, t.Name, th, t.Metrics, keptNames)
	out.Metadata = copyMetadata(c.Metadata, 0)
	for oi, ev := range kept {
		out.Groups[oi] = append([]string(nil), c.Groups[ev]...)
		copy(out.Calls[oi*th:(oi+1)*th], c.Calls[ev*th:])
	}
	for _, m := range out.Metrics {
		src, dst := c.Col(m), out.Col(m)
		if src == nil {
			continue
		}
		for oi, ev := range kept {
			copy(dst.Inc[oi*th:(oi+1)*th], src.Inc[ev*th:])
			copy(dst.Exc[oi*th:(oi+1)*th], src.Exc[ev*th:])
		}
	}
	return out.Trial()
}

// TopN returns the n flat events with the largest mean exclusive value of
// the metric, in descending order.
func TopN(t *perfdmf.Trial, metric string, n int) []string {
	if rowOriented.Load() {
		return TopNRow(t, metric, n)
	}
	c, err := perfdmf.ColumnsFromTrial(t)
	if err != nil {
		return TopNRow(t, metric, n)
	}
	col := c.Col(metric)
	th := c.Threads
	type ev struct {
		name string
		val  float64
	}
	var evs []ev
	for i, name := range c.EventNames {
		if strings.Contains(name, perfdmf.CallpathSeparator) {
			continue
		}
		val := 0.0
		if col != nil {
			// Absent cells are zero-filled, so the block mean equals
			// the row side's Mean over a present slice or Mean(nil)=0.
			val = perfdmf.Mean(col.Exc[i*th : (i+1)*th])
		}
		evs = append(evs, ev{name, val})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].val != evs[j].val {
			return evs[i].val > evs[j].val
		}
		return evs[i].name < evs[j].name
	})
	if n > len(evs) {
		n = len(evs)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = evs[i].name
	}
	return out
}

// ExclusiveStats computes per-event statistics of the exclusive metric
// across threads, for flat events, sorted by descending mean.
func ExclusiveStats(t *perfdmf.Trial, metric string) []EventStat {
	if rowOriented.Load() {
		return ExclusiveStatsRow(t, metric)
	}
	c, err := perfdmf.ColumnsFromTrial(t)
	if err != nil {
		return ExclusiveStatsRow(t, metric)
	}
	return eventStatsColumnar(c, metric, false)
}

// InclusiveStats is ExclusiveStats over inclusive values.
func InclusiveStats(t *perfdmf.Trial, metric string) []EventStat {
	if rowOriented.Load() {
		return InclusiveStatsRow(t, metric)
	}
	c, err := perfdmf.ColumnsFromTrial(t)
	if err != nil {
		return InclusiveStatsRow(t, metric)
	}
	return eventStatsColumnar(c, metric, true)
}

func eventStatsColumnar(c *perfdmf.Columns, metric string, inclusive bool) []EventStat {
	col := c.Col(metric)
	th := c.Threads
	rows := make([]*EventStat, c.NEvents())
	parallel.Each(c.NEvents(), 0, func(i int) {
		name := c.EventNames[i]
		if strings.Contains(name, perfdmf.CallpathSeparator) || col == nil {
			return
		}
		block, present := col.Exc, col.ExcPresent
		if inclusive {
			block, present = col.Inc, col.IncPresent
		}
		if !present[i] {
			return
		}
		vals := block[i*th : (i+1)*th]
		s := EventStat{Event: name, Threads: th, Mean: perfdmf.Mean(vals),
			StdDev: perfdmf.StdDev(vals), Total: perfdmf.Sum(vals), Min: vals[0], Max: vals[0]}
		for _, v := range vals {
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
		rows[i] = &s
	})
	var out []EventStat
	for _, s := range rows {
		if s != nil {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mean != out[j].Mean {
			return out[i].Mean > out[j].Mean
		}
		return out[i].Event < out[j].Event
	})
	return out
}

// KMeans clusters the threads of a trial into k groups on their per-event
// exclusive values of the metric. Initialization is deterministic
// (farthest-point seeding from thread 0), so results are reproducible.
func KMeans(t *perfdmf.Trial, metric string, k int, maxIter int) (*Clustering, error) {
	if rowOriented.Load() {
		return KMeansRow(t, metric, k, maxIter)
	}
	c, err := perfdmf.ColumnsFromTrial(t)
	if err != nil {
		return KMeansRow(t, metric, k, maxIter)
	}
	if k <= 0 {
		return nil, fmt.Errorf("analysis: k must be positive, got %d", k)
	}
	if k > c.Threads {
		return nil, fmt.Errorf("analysis: k=%d exceeds thread count %d", k, c.Threads)
	}
	col := c.Col(metric)
	var events []string
	var blocks [][]float64
	th := c.Threads
	for i, name := range c.EventNames {
		if strings.Contains(name, perfdmf.CallpathSeparator) {
			continue
		}
		if col == nil || !col.ExcPresent[i] {
			continue
		}
		events = append(events, name)
		blocks = append(blocks, col.Exc[i*th:(i+1)*th])
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("analysis: trial %q has no events with metric %q", t.Name, metric)
	}
	feats := make([][]float64, th)
	parallel.Each(th, 0, func(thr int) {
		row := make([]float64, len(events))
		for j := range blocks {
			row[j] = blocks[j][thr]
		}
		feats[thr] = row
	})
	return kmeansCore(events, feats, k, maxIter)
}

// DiffTrials returns a - b element-wise over the union of events and the
// intersection of metrics. Both trials must have the same thread count.
// Missing events in either trial are treated as zero, so a regression shows
// up positive and an improvement negative.
func DiffTrials(a, b *perfdmf.Trial) (*perfdmf.Trial, error) {
	if rowOriented.Load() {
		return DiffTrialsRow(a, b)
	}
	if a.Threads != b.Threads {
		return nil, fmt.Errorf("analysis: diff of %d-thread and %d-thread trials", a.Threads, b.Threads)
	}
	ca, errA := perfdmf.ColumnsFromTrial(a)
	cb, errB := perfdmf.ColumnsFromTrial(b)
	if errA != nil || errB != nil {
		return DiffTrialsRow(a, b)
	}
	var metrics []string
	for _, m := range a.Metrics {
		if b.HasMetric(m) {
			metrics = append(metrics, m)
		}
	}
	if len(metrics) == 0 {
		return nil, fmt.Errorf("analysis: trials %q and %q share no metrics", a.Name, b.Name)
	}
	union, idxA, idxB := unionIndexes(ca, cb)
	th := a.Threads
	out := buildColumns(a.App, a.Experiment, a.Name+" - "+b.Name, th, dedup(metrics), union)
	out.Metadata = map[string]string{
		"algebra":    "difference",
		"minuend":    a.Name,
		"subtrahend": b.Name,
	}
	diffBlock(out.Calls, ca.Calls, cb.Calls, idxA, idxB, th)
	for _, m := range out.Metrics {
		colA, colB, dst := ca.Col(m), cb.Col(m), out.Col(m)
		diffBlock(dst.Inc, colA.Inc, colB.Inc, idxA, idxB, th)
		diffBlock(dst.Exc, colA.Exc, colB.Exc, idxA, idxB, th)
	}
	return out.Trial(), nil
}

// diffBlock writes dst[u] = a[idxA[u]] - b[idxB[u]] per thread, with a
// missing event (index -1) contributing zero.
func diffBlock(dst, a, b []float64, idxA, idxB []int, th int) {
	for u := range idxA {
		for t := 0; t < th; t++ {
			var av, bv float64
			if idxA[u] >= 0 {
				av = a[idxA[u]*th+t]
			}
			if idxB[u] >= 0 {
				bv = b[idxB[u]*th+t]
			}
			dst[u*th+t] = av - bv
		}
	}
}

// unionIndexes returns the union of the two event dictionaries in
// first-seen order (a's events, then b's new ones) plus each union entry's
// index in a and in b (-1 when absent).
func unionIndexes(a, b *perfdmf.Columns) (names []string, idxA, idxB []int) {
	names = append([]string(nil), a.EventNames...)
	for _, n := range b.EventNames {
		if _, ok := a.EventIndex(n); !ok {
			names = append(names, n)
		}
	}
	idxA = make([]int, len(names))
	idxB = make([]int, len(names))
	for u, n := range names {
		idxA[u], idxB[u] = -1, -1
		if i, ok := a.EventIndex(n); ok {
			idxA[u] = i
		}
		if i, ok := b.EventIndex(n); ok {
			idxB[u] = i
		}
	}
	return names, idxA, idxB
}

func dedup(xs []string) []string {
	seen := make(map[string]bool, len(xs))
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// MergeTrials sums a list of trials over the union of their events and the
// intersection of their metrics (e.g. combining repeated runs). All trials
// must have the same thread count.
func MergeTrials(trials []*perfdmf.Trial) (*perfdmf.Trial, error) {
	if rowOriented.Load() {
		return MergeTrialsRow(trials)
	}
	if len(trials) == 0 {
		return nil, fmt.Errorf("analysis: merge of no trials")
	}
	first := trials[0]
	for _, t := range trials[1:] {
		if t.Threads != first.Threads {
			return nil, fmt.Errorf("analysis: merge of mismatched thread counts (%d vs %d)",
				t.Threads, first.Threads)
		}
	}
	// A duplicate metric registration makes the row oracle's AddValue loop
	// accumulate that metric twice; that degenerate shape stays on the
	// oracle path rather than being replicated here.
	for _, t := range trials {
		if len(dedup(t.Metrics)) != len(t.Metrics) {
			return MergeTrialsRow(trials)
		}
	}
	cs := make([]*perfdmf.Columns, len(trials))
	for i, t := range trials {
		c, err := perfdmf.ColumnsFromTrial(t)
		if err != nil {
			return MergeTrialsRow(trials)
		}
		cs[i] = c
	}
	metrics := append([]string(nil), first.Metrics...)
	for _, t := range trials[1:] {
		var keep []string
		for _, m := range metrics {
			if t.HasMetric(m) {
				keep = append(keep, m)
			}
		}
		metrics = keep
	}
	if len(metrics) == 0 {
		return nil, fmt.Errorf("analysis: merged trials share no metrics")
	}
	// Union of events in first-seen order across trials, mirroring the row
	// oracle's EnsureEvent sequence.
	var union []string
	outIdx := make(map[string]int)
	for _, c := range cs {
		for _, n := range c.EventNames {
			if _, ok := outIdx[n]; !ok {
				outIdx[n] = len(union)
				union = append(union, n)
			}
		}
	}
	th := first.Threads
	out := buildColumns(first.App, first.Experiment, "merged", th, metrics, union)
	out.Metadata = map[string]string{
		"algebra": "merge",
		"members": fmt.Sprintf("%d", len(trials)),
	}
	dsts := make([]*perfdmf.MetricColumn, len(metrics))
	for i, m := range metrics {
		dsts[i] = out.Col(m)
	}
	// Accumulate trial by trial, event by event — the same += sequence per
	// cell as the oracle, so the float results match bit for bit. Absent
	// cells contribute an explicit +0 (the zero-filled block), exactly like
	// AddValue with a zero sample.
	for _, c := range cs {
		srcs := make([]*perfdmf.MetricColumn, len(metrics))
		for i, m := range metrics {
			srcs[i] = c.Col(m)
		}
		for ev, name := range c.EventNames {
			oi := outIdx[name]
			for t := 0; t < th; t++ {
				out.Calls[oi*th+t] += c.Calls[ev*th+t]
				for i := range metrics {
					dsts[i].Inc[oi*th+t] += srcs[i].Inc[ev*th+t]
					dsts[i].Exc[oi*th+t] += srcs[i].Exc[ev*th+t]
				}
			}
		}
	}
	return out.Trial(), nil
}

// RelativeChange compares per-event means between two trials.
func RelativeChange(base, other *perfdmf.Trial, metric string, minBase float64) []Change {
	if rowOriented.Load() {
		return RelativeChangeRow(base, other, metric, minBase)
	}
	cb, errB := perfdmf.ColumnsFromTrial(base)
	co, errO := perfdmf.ColumnsFromTrial(other)
	if errB != nil || errO != nil {
		return RelativeChangeRow(base, other, metric, minBase)
	}
	colB, colO := cb.Col(metric), co.Col(metric)
	th := cb.Threads
	var out []Change
	for ev, name := range cb.EventNames {
		if strings.Contains(name, perfdmf.CallpathSeparator) {
			continue
		}
		bv := 0.0
		if colB != nil {
			bv = perfdmf.Mean(colB.Exc[ev*th : (ev+1)*th])
		}
		if bv < minBase || bv == 0 {
			continue
		}
		oi, ok := co.EventIndex(name)
		if !ok {
			continue
		}
		ov := 0.0
		if colO != nil {
			ov = perfdmf.Mean(colO.Exc[oi*co.Threads : (oi+1)*co.Threads])
		}
		out = append(out, Change{Event: name, Base: bv, Other: ov, Fraction: (ov - bv) / bv})
	}
	sortChanges(out)
	return out
}
