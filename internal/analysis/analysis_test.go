package analysis

import (
	"math"
	"testing"

	"perfknow/internal/perfdmf"
)

// trial builds: 4 threads, metrics TIME and STALLS/CYCLES, main enclosing
// inner/outer with anti-correlated times (the MSA pattern).
func trial() *perfdmf.Trial {
	t := perfdmf.NewTrial("app", "exp", "t16", 4)
	t.AddMetric("TIME")
	t.AddMetric("BACK_END_BUBBLE_ALL")
	t.AddMetric("CPU_CYCLES")

	main := t.EnsureEvent("main")
	inner := t.EnsureEvent("inner")
	outer := t.EnsureEvent("outer")
	cp1 := t.EnsureEvent("main => outer")
	cp2 := t.EnsureEvent("main => outer => inner")
	for th := 0; th < 4; th++ {
		f := float64(th + 1)
		main.Calls[th] = 1
		main.SetValue("TIME", th, 1000, 50)
		main.SetValue("BACK_END_BUBBLE_ALL", th, 500, 10)
		main.SetValue("CPU_CYCLES", th, 2000, 100)
		inner.Calls[th] = 5
		inner.SetValue("TIME", th, 200*f, 200*f) // 200,400,600,800
		inner.SetValue("BACK_END_BUBBLE_ALL", th, 100*f, 100*f)
		inner.SetValue("CPU_CYCLES", th, 400*f, 400*f)
		outer.Calls[th] = 5
		outer.SetValue("TIME", th, 950, 950-200*f) // excl 750,550,350,150 — anti-correlated
		outer.SetValue("BACK_END_BUBBLE_ALL", th, 200, 10)
		outer.SetValue("CPU_CYCLES", th, 1900, 100)
		cp1.SetValue("TIME", th, 950, 950-200*f)
		cp2.SetValue("TIME", th, 200*f, 200*f)
	}
	return t
}

func TestDeriveMetric(t *testing.T) {
	tr := trial()
	out, name, err := DeriveMetric(tr, "BACK_END_BUBBLE_ALL", "CPU_CYCLES", OpDivide)
	if err != nil {
		t.Fatal(err)
	}
	if name != "(BACK_END_BUBBLE_ALL / CPU_CYCLES)" {
		t.Fatalf("derived name = %q", name)
	}
	if !out.HasMetric(name) {
		t.Fatal("derived metric missing")
	}
	// inner thread 0: 100/400 = 0.25 both ways.
	got := out.Event("inner").Inclusive[name][0]
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("derived value = %g, want 0.25", got)
	}
	// Original untouched.
	if tr.HasMetric(name) {
		t.Fatal("DeriveMetric mutated its input")
	}
	// Unknown metrics error.
	if _, _, err := DeriveMetric(tr, "NOPE", "CPU_CYCLES", OpDivide); err == nil {
		t.Fatal("unknown lhs accepted")
	}
	if _, _, err := DeriveMetric(tr, "CPU_CYCLES", "NOPE", OpDivide); err == nil {
		t.Fatal("unknown rhs accepted")
	}
}

func TestDeriveMetricDivideByZero(t *testing.T) {
	tr := perfdmf.NewTrial("a", "e", "t", 1)
	tr.AddMetric("A")
	tr.AddMetric("B")
	e := tr.EnsureEvent("x")
	e.SetValue("A", 0, 5, 5)
	e.SetValue("B", 0, 0, 0)
	out, name, err := DeriveMetric(tr, "A", "B", OpDivide)
	if err != nil {
		t.Fatal(err)
	}
	if v := out.Event("x").Inclusive[name][0]; v != 0 {
		t.Fatalf("divide by zero = %g, want 0", v)
	}
}

func TestOpsAndParse(t *testing.T) {
	for s, want := range map[string]Op{"+": OpAdd, "-": OpSubtract, "*": OpMultiply, "/": OpDivide} {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Fatalf("ParseOp(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("Op.String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseOp("%"); err == nil {
		t.Fatal("bad op accepted")
	}
	if got := OpAdd.apply(2, 3); got != 5 {
		t.Fatalf("apply + = %g", got)
	}
	if got := OpSubtract.apply(2, 3); got != -1 {
		t.Fatalf("apply - = %g", got)
	}
	if got := OpMultiply.apply(2, 3); got != 6 {
		t.Fatalf("apply * = %g", got)
	}
}

func TestDeriveScaledAndSum(t *testing.T) {
	tr := trial()
	out, name, err := DeriveScaled(tr, "TIME", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Event("inner").Exclusive[name][1]; got != 800 {
		t.Fatalf("scaled = %g, want 800", got)
	}
	if _, _, err := DeriveScaled(tr, "NOPE", 2); err == nil {
		t.Fatal("unknown metric accepted")
	}

	out2, sname, err := DeriveSum(tr, []string{"TIME", "CPU_CYCLES"})
	if err != nil {
		t.Fatal(err)
	}
	if got := out2.Event("inner").Inclusive[sname][0]; got != 600 {
		t.Fatalf("sum = %g, want 600", got)
	}
	if _, _, err := DeriveSum(tr, nil); err == nil {
		t.Fatal("empty sum accepted")
	}
	if _, _, err := DeriveSum(tr, []string{"NOPE"}); err == nil {
		t.Fatal("unknown sum metric accepted")
	}
}

func TestReduce(t *testing.T) {
	tr := trial()
	mean := Reduce(tr, ReduceMean)
	if mean.Threads != 1 {
		t.Fatal("reduced trial should have one thread")
	}
	// inner mean inclusive TIME = (200+400+600+800)/4 = 500.
	if got := mean.Event("inner").Inclusive["TIME"][0]; got != 500 {
		t.Fatalf("mean = %g, want 500", got)
	}
	total := Reduce(tr, ReduceTotal)
	if got := total.Event("inner").Inclusive["TIME"][0]; got != 2000 {
		t.Fatalf("total = %g, want 2000", got)
	}
	max := Reduce(tr, ReduceMax)
	if got := max.Event("inner").Inclusive["TIME"][0]; got != 800 {
		t.Fatalf("max = %g, want 800", got)
	}
	min := Reduce(tr, ReduceMin)
	if got := min.Event("inner").Inclusive["TIME"][0]; got != 200 {
		t.Fatalf("min = %g, want 200", got)
	}
	sd := Reduce(tr, ReduceStdDev)
	if got := sd.Event("inner").Inclusive["TIME"][0]; math.Abs(got-math.Sqrt(50000)) > 1e-9 {
		t.Fatalf("stddev = %g", got)
	}
	if mean.Metadata["reduction"] != "mean" {
		t.Fatal("reduction metadata missing")
	}
}

func TestExtractEventsAndTopN(t *testing.T) {
	tr := trial()
	sub := ExtractEvents(tr, []string{"inner", "outer"})
	if len(sub.Events) != 2 {
		t.Fatalf("extract kept %d events", len(sub.Events))
	}
	if sub.Event("main") != nil {
		t.Fatal("main should be gone")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}

	top := TopN(tr, "TIME", 2)
	// Mean exclusive TIME: inner 500, outer 450, main 50.
	if len(top) != 2 || top[0] != "inner" || top[1] != "outer" {
		t.Fatalf("TopN = %v", top)
	}
	if got := TopN(tr, "TIME", 99); len(got) != 3 {
		t.Fatalf("TopN overflow = %v", got)
	}
}

func TestStatsAndLoadBalance(t *testing.T) {
	tr := trial()
	stats := ExclusiveStats(tr, "TIME")
	if stats[0].Event != "inner" {
		t.Fatalf("top stat = %q", stats[0].Event)
	}
	var innerStat EventStat
	for _, s := range stats {
		if s.Event == "inner" {
			innerStat = s
		}
	}
	if innerStat.Mean != 500 || innerStat.Min != 200 || innerStat.Max != 800 || innerStat.Total != 2000 {
		t.Fatalf("inner stat = %+v", innerStat)
	}
	inc := InclusiveStats(tr, "TIME")
	found := false
	for _, s := range inc {
		if s.Event == "main" && s.Mean == 1000 {
			found = true
		}
	}
	if !found {
		t.Fatal("inclusive stats missing main")
	}

	lbs := LoadBalanceAnalysis(tr, "TIME")
	byName := map[string]LoadBalance{}
	for _, lb := range lbs {
		byName[lb.Event] = lb
	}
	inner := byName["inner"]
	// stddev/mean for 200..800 ≈ 223.6/500 ≈ 0.447 — above the 0.25 rule threshold.
	if inner.Ratio < 0.25 {
		t.Fatalf("inner imbalance ratio = %g, expected > 0.25", inner.Ratio)
	}
	// fraction of total: 500/1000.
	if math.Abs(inner.FractionOfTotal-0.5) > 1e-12 {
		t.Fatalf("inner fraction = %g", inner.FractionOfTotal)
	}
	// main itself is balanced.
	if byName["main"].Ratio != 0 {
		t.Fatalf("main ratio = %g", byName["main"].Ratio)
	}
}

func TestEventCorrelationAndNesting(t *testing.T) {
	tr := trial()
	c, err := EventCorrelation(tr, "TIME", "inner", "outer")
	if err != nil {
		t.Fatal(err)
	}
	if c > -0.99 {
		t.Fatalf("inner/outer correlation = %g, want strongly negative", c)
	}
	if _, err := EventCorrelation(tr, "TIME", "ghost", "outer"); err == nil {
		t.Fatal("unknown event accepted")
	}
	if _, err := EventCorrelation(tr, "TIME", "inner", "ghost"); err == nil {
		t.Fatal("unknown event accepted")
	}

	if !IsNested(tr, "outer", "inner") {
		t.Fatal("outer=>inner nesting not detected")
	}
	if !IsNested(tr, "main", "inner") {
		t.Fatal("transitive nesting not detected")
	}
	if IsNested(tr, "inner", "outer") {
		t.Fatal("reverse nesting wrongly detected")
	}
	if IsNested(tr, "inner", "ghost") {
		t.Fatal("ghost nesting wrongly detected")
	}
}

func TestMetricCorrelation(t *testing.T) {
	tr := trial()
	// TIME and CPU_CYCLES broadly track each other in the fixture.
	c, err := MetricCorrelation(tr, "TIME", "CPU_CYCLES")
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.5 {
		t.Fatalf("correlation = %g, want clearly positive", c)
	}
	// A metric derived as a scalar multiple correlates perfectly.
	scaled, name, err := DeriveScaled(tr, "TIME", 3)
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := MetricCorrelation(scaled, "TIME", name)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(perfect-1) > 1e-9 {
		t.Fatalf("scaled correlation = %g, want 1", perfect)
	}
	if _, err := MetricCorrelation(tr, "TIME", "NOPE"); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if _, err := MetricCorrelation(tr, "NOPE", "TIME"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestScalingSeries(t *testing.T) {
	mk := func(threads int, timePerThread float64) *perfdmf.Trial {
		tr := perfdmf.NewTrial("a", "scaling", "t", threads)
		tr.AddMetric("TIME")
		tr.Metadata["threads"] = itoa(threads)
		m := tr.EnsureEvent("main")
		for th := 0; th < threads; th++ {
			m.SetValue("TIME", th, timePerThread, timePerThread)
		}
		return tr
	}
	// Perfect scaling: time halves as threads double.
	trials := []*perfdmf.Trial{mk(4, 250), mk(1, 1000), mk(2, 500)}
	pts, err := ScalingSeries(trials, "TIME")
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Threads != 1 || pts[2].Threads != 4 {
		t.Fatal("series not sorted by threads")
	}
	if math.Abs(pts[2].Speedup-4) > 1e-12 || math.Abs(pts[2].Efficiency-1) > 1e-12 {
		t.Fatalf("speedup=%g eff=%g", pts[2].Speedup, pts[2].Efficiency)
	}
	if _, err := ScalingSeries(nil, "TIME"); err == nil {
		t.Fatal("empty series accepted")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

func TestPerEventSpeedup(t *testing.T) {
	base := perfdmf.NewTrial("a", "e", "1", 1)
	base.AddMetric("TIME")
	base.EnsureEvent("f").SetValue("TIME", 0, 100, 100)
	base.EnsureEvent("g").SetValue("TIME", 0, 100, 100)
	other := perfdmf.NewTrial("a", "e", "4", 4)
	other.AddMetric("TIME")
	for th := 0; th < 4; th++ {
		other.EnsureEvent("f").SetValue("TIME", th, 25, 25)   // scales 4x
		other.EnsureEvent("g").SetValue("TIME", th, 100, 100) // flat
	}
	sp := PerEventSpeedup(base, other, "TIME")
	if math.Abs(sp["f"]-4) > 1e-12 {
		t.Fatalf("f speedup = %g", sp["f"])
	}
	if math.Abs(sp["g"]-1) > 1e-12 {
		t.Fatalf("g speedup = %g", sp["g"])
	}
}

func TestLinearRegression(t *testing.T) {
	slope, icept, r2, err := LinearRegression([]float64{1, 2, 3, 4}, []float64{3, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(icept-1) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Fatalf("fit = %g x + %g, r2=%g", slope, icept, r2)
	}
	if _, _, _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Fatal("short input accepted")
	}
	if _, _, _, err := LinearRegression([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("constant x accepted")
	}
	// Constant y: perfect horizontal fit.
	_, _, r2, err = LinearRegression([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil || r2 != 1 {
		t.Fatalf("constant y: r2=%g err=%v", r2, err)
	}
}

func TestKMeansSeparatesMasterFromWorkers(t *testing.T) {
	// 8 threads: thread 0 does exchange work, others compute — two clusters.
	tr := perfdmf.NewTrial("a", "e", "t", 8)
	tr.AddMetric("TIME")
	ex := tr.EnsureEvent("exchange")
	cp := tr.EnsureEvent("compute")
	for th := 0; th < 8; th++ {
		if th == 0 {
			ex.SetValue("TIME", th, 1000, 1000)
			cp.SetValue("TIME", th, 10, 10)
		} else {
			ex.SetValue("TIME", th, 5, 5)
			cp.SetValue("TIME", th, 900+float64(th), 900+float64(th))
		}
	}
	cl, err := KMeans(tr, "TIME", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Sizes[cl.Assignment[0]] != 1 {
		t.Fatalf("master not isolated: sizes=%v assign=%v", cl.Sizes, cl.Assignment)
	}
	for th := 1; th < 8; th++ {
		if cl.Assignment[th] == cl.Assignment[0] {
			t.Fatalf("worker %d clustered with master", th)
		}
	}
	if cl.Inertia < 0 {
		t.Fatal("negative inertia")
	}
}

func TestKMeansValidation(t *testing.T) {
	tr := trial()
	if _, err := KMeans(tr, "TIME", 0, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(tr, "TIME", 99, 10); err == nil {
		t.Fatal("k>threads accepted")
	}
	if _, err := KMeans(tr, "NO_METRIC", 2, 10); err == nil {
		t.Fatal("unknown metric accepted")
	}
	// k == threads degenerates to one thread per cluster.
	cl, err := KMeans(tr, "TIME", 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cl.Sizes {
		if s != 1 {
			t.Fatalf("sizes = %v", cl.Sizes)
		}
	}
}
