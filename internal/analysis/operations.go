// Package analysis is the data-mining operation library of PerfExplorer:
// derived metrics, descriptive statistics across threads, load-balance and
// correlation analyses, top-N selection, scalability/efficiency series over
// multi-trial parametric studies, k-means clustering of thread behaviour,
// and simple regression. Operations take perfdmf Trials and return either
// new Trials (so operations compose) or small result structs that scripts
// and inference rules consume.
package analysis

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"perfknow/internal/parallel"
	"perfknow/internal/perfdmf"
)

// Op is a binary derived-metric operator.
type Op int

const (
	OpAdd Op = iota
	OpSubtract
	OpMultiply
	OpDivide
)

// String renders the operator symbol used inside derived metric names.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSubtract:
		return "-"
	case OpMultiply:
		return "*"
	case OpDivide:
		return "/"
	}
	return "?"
}

// ParseOp parses "+", "-", "*", "/".
func ParseOp(s string) (Op, error) {
	switch s {
	case "+":
		return OpAdd, nil
	case "-":
		return OpSubtract, nil
	case "*":
		return OpMultiply, nil
	case "/":
		return OpDivide, nil
	}
	return 0, fmt.Errorf("analysis: unknown operator %q", s)
}

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpAdd:
		return a + b
	case OpSubtract:
		return a - b
	case OpMultiply:
		return a * b
	case OpDivide:
		if b == 0 {
			return 0
		}
		return a / b
	}
	return 0
}

// DeriveMetricName is the canonical name of a derived metric, matching the
// "(LHS / RHS)" convention PerfExplorer scripts and rules use.
func DeriveMetricName(lhs, rhs string, op Op) string {
	return "(" + lhs + " " + op.String() + " " + rhs + ")"
}

// DeriveMetricRow is the row-oriented implementation of DeriveMetric,
// retained as the differential oracle for the columnar engine (see
// columnar.go).
func DeriveMetricRow(t *perfdmf.Trial, lhs, rhs string, op Op) (*perfdmf.Trial, string, error) {
	if !t.HasMetric(lhs) {
		return nil, "", fmt.Errorf("analysis: trial %q has no metric %q", t.Name, lhs)
	}
	if !t.HasMetric(rhs) {
		return nil, "", fmt.Errorf("analysis: trial %q has no metric %q", t.Name, rhs)
	}
	name := DeriveMetricName(lhs, rhs, op)
	out := t.Clone()
	out.AddMetric(name)
	// Each event owns its metric maps in the fresh clone, so the per-event
	// element-wise computation fans out share-nothing.
	parallel.Each(len(out.Events), 0, func(i int) {
		e := out.Events[i]
		li, ri := e.Inclusive[lhs], e.Inclusive[rhs]
		le, re := e.Exclusive[lhs], e.Exclusive[rhs]
		for th := 0; th < out.Threads; th++ {
			e.SetValue(name, th, op.apply(at(li, th), at(ri, th)), op.apply(at(le, th), at(re, th)))
		}
	})
	return out, name, nil
}

// DeriveMetricBatch applies the same derivation to several trials
// concurrently — the multi-trial parametric-study path. It returns the
// derived trials in input order plus the metric name; on any failure the
// first error (by trial index) is returned.
func DeriveMetricBatch(trials []*perfdmf.Trial, lhs, rhs string, op Op) ([]*perfdmf.Trial, string, error) {
	if len(trials) == 0 {
		return nil, "", fmt.Errorf("analysis: DeriveMetricBatch needs at least one trial")
	}
	name := DeriveMetricName(lhs, rhs, op)
	out, err := parallel.Map(context.Background(), len(trials), 0, func(i int) (*perfdmf.Trial, error) {
		d, _, err := DeriveMetric(trials[i], lhs, rhs, op)
		return d, err
	})
	if err != nil {
		return nil, "", err
	}
	return out, name, nil
}

// DeriveScaledRow is the row-oriented oracle for DeriveScaled.
func DeriveScaledRow(t *perfdmf.Trial, metric string, scale float64) (*perfdmf.Trial, string, error) {
	if !t.HasMetric(metric) {
		return nil, "", fmt.Errorf("analysis: trial %q has no metric %q", t.Name, metric)
	}
	name := "(" + metric + " * " + strconv.FormatFloat(scale, 'g', -1, 64) + ")"
	out := t.Clone()
	out.AddMetric(name)
	for _, e := range out.Events {
		inc, exc := e.Inclusive[metric], e.Exclusive[metric]
		for th := 0; th < out.Threads; th++ {
			e.SetValue(name, th, at(inc, th)*scale, at(exc, th)*scale)
		}
	}
	return out, name, nil
}

// DeriveSumRow is the row-oriented oracle for DeriveSum.
func DeriveSumRow(t *perfdmf.Trial, metrics []string) (*perfdmf.Trial, string, error) {
	if len(metrics) == 0 {
		return nil, "", fmt.Errorf("analysis: DeriveSum needs at least one metric")
	}
	for _, m := range metrics {
		if !t.HasMetric(m) {
			return nil, "", fmt.Errorf("analysis: trial %q has no metric %q", t.Name, m)
		}
	}
	name := "(sum"
	for _, m := range metrics {
		name += " " + m
	}
	name += ")"
	out := t.Clone()
	out.AddMetric(name)
	for _, e := range out.Events {
		for th := 0; th < out.Threads; th++ {
			var inc, exc float64
			for _, m := range metrics {
				inc += at(e.Inclusive[m], th)
				exc += at(e.Exclusive[m], th)
			}
			e.SetValue(name, th, inc, exc)
		}
	}
	return out, name, nil
}

func at(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}

// Reduction collapses the thread dimension of a trial.
type Reduction int

const (
	ReduceMean Reduction = iota
	ReduceTotal
	ReduceMax
	ReduceMin
	ReduceStdDev
)

// ReduceRow is the row-oriented oracle for Reduce.
func ReduceRow(t *perfdmf.Trial, r Reduction) *perfdmf.Trial {
	out := perfdmf.NewTrial(t.App, t.Experiment, t.Name, 1)
	for k, v := range t.Metadata {
		out.Metadata[k] = v
	}
	out.Metadata["reduction"] = r.String()
	out.Metrics = append([]string(nil), t.Metrics...)
	for _, e := range t.Events {
		ne := out.EnsureEvent(e.Name)
		ne.Calls[0] = reduce(e.Calls, r)
		ne.Groups = append([]string(nil), e.Groups...)
		for _, m := range t.Metrics {
			ne.SetValue(m, 0, reduce(e.Inclusive[m], r), reduce(e.Exclusive[m], r))
		}
	}
	return out
}

// String names the reduction.
func (r Reduction) String() string {
	switch r {
	case ReduceMean:
		return "mean"
	case ReduceTotal:
		return "total"
	case ReduceMax:
		return "max"
	case ReduceMin:
		return "min"
	case ReduceStdDev:
		return "stddev"
	}
	return "unknown"
}

func reduce(xs []float64, r Reduction) float64 {
	if len(xs) == 0 {
		return 0
	}
	switch r {
	case ReduceMean:
		return perfdmf.Mean(xs)
	case ReduceTotal:
		return perfdmf.Sum(xs)
	case ReduceMax:
		m := xs[0]
		for _, x := range xs[1:] {
			if x > m {
				m = x
			}
		}
		return m
	case ReduceMin:
		m := xs[0]
		for _, x := range xs[1:] {
			if x < m {
				m = x
			}
		}
		return m
	case ReduceStdDev:
		return perfdmf.StdDev(xs)
	}
	return 0
}

// ExtractEventsRow is the row-oriented oracle for ExtractEvents.
func ExtractEventsRow(t *perfdmf.Trial, names []string) *perfdmf.Trial {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := perfdmf.NewTrial(t.App, t.Experiment, t.Name, t.Threads)
	for k, v := range t.Metadata {
		out.Metadata[k] = v
	}
	out.Metrics = append([]string(nil), t.Metrics...)
	for _, e := range t.Events {
		if !want[e.Name] {
			continue
		}
		ne := out.EnsureEvent(e.Name)
		copy(ne.Calls, e.Calls)
		ne.Groups = append([]string(nil), e.Groups...)
		for _, m := range t.Metrics {
			for th := 0; th < t.Threads; th++ {
				ne.SetValue(m, th, at(e.Inclusive[m], th), at(e.Exclusive[m], th))
			}
		}
	}
	return out
}

// TopNRow is the row-oriented oracle for TopN.
func TopNRow(t *perfdmf.Trial, metric string, n int) []string {
	type ev struct {
		name string
		val  float64
	}
	var evs []ev
	for _, e := range t.Events {
		if e.IsCallpath() {
			continue
		}
		evs = append(evs, ev{e.Name, perfdmf.Mean(e.Exclusive[metric])})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].val != evs[j].val {
			return evs[i].val > evs[j].val
		}
		return evs[i].name < evs[j].name
	})
	if n > len(evs) {
		n = len(evs)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = evs[i].name
	}
	return out
}

// LinearRegression fits y = slope*x + intercept by least squares and
// returns the fit along with r² (coefficient of determination).
func LinearRegression(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0, fmt.Errorf("analysis: regression needs two equal-length series of >= 2 points")
	}
	mx, my := perfdmf.Mean(xs), perfdmf.Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, fmt.Errorf("analysis: regression with constant x")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1, nil
	}
	r := sxy / math.Sqrt(sxx*syy)
	return slope, intercept, r * r, nil
}
