package analysis

import (
	"context"
	"strconv"

	"perfknow/internal/obs"
	"perfknow/internal/perfdmf"
)

// Context-aware twins of the analysis operations used on request paths
// (sessions, the dmfserver analyze endpoint). Each wraps the plain
// function in an `analysis.*` span carrying the operation's parameters, so
// traces of a diagnosis run show where analysis time went. The plain
// functions remain the API for callers without a context.

// ExclusiveStatsCtx is ExclusiveStats under an `analysis.stats` span.
func ExclusiveStatsCtx(ctx context.Context, t *perfdmf.Trial, metric string) []EventStat {
	_, sp := obs.StartSpan(ctx, "analysis.stats", "metric", metric, "kind", "exclusive")
	defer sp.End()
	return ExclusiveStats(t, metric)
}

// InclusiveStatsCtx is InclusiveStats under an `analysis.stats` span.
func InclusiveStatsCtx(ctx context.Context, t *perfdmf.Trial, metric string) []EventStat {
	_, sp := obs.StartSpan(ctx, "analysis.stats", "metric", metric, "kind", "inclusive")
	defer sp.End()
	return InclusiveStats(t, metric)
}

// DeriveMetricCtx is DeriveMetric under an `analysis.derive` span.
func DeriveMetricCtx(ctx context.Context, t *perfdmf.Trial, lhs, rhs string, op Op) (*perfdmf.Trial, string, error) {
	_, sp := obs.StartSpan(ctx, "analysis.derive", "lhs", lhs, "rhs", rhs)
	out, name, err := DeriveMetric(t, lhs, rhs, op)
	sp.SetAttr("metric", name)
	sp.SetError(err)
	sp.End()
	return out, name, err
}

// KMeansCtx is KMeans under an `analysis.cluster` span.
func KMeansCtx(ctx context.Context, t *perfdmf.Trial, metric string, k, maxIter int) (*Clustering, error) {
	_, sp := obs.StartSpan(ctx, "analysis.cluster",
		"metric", metric, "k", strconv.Itoa(k))
	c, err := KMeans(t, metric, k, maxIter)
	sp.SetError(err)
	sp.End()
	return c, err
}

// TopNCtx is TopN under an `analysis.topn` span.
func TopNCtx(ctx context.Context, t *perfdmf.Trial, metric string, n int) []string {
	_, sp := obs.StartSpan(ctx, "analysis.topn",
		"metric", metric, "n", strconv.Itoa(n))
	defer sp.End()
	return TopN(t, metric, n)
}

// LoadBalanceAnalysisCtx is LoadBalanceAnalysis under an
// `analysis.loadbalance` span.
func LoadBalanceAnalysisCtx(ctx context.Context, t *perfdmf.Trial, metric string) []LoadBalance {
	_, sp := obs.StartSpan(ctx, "analysis.loadbalance", "metric", metric)
	defer sp.End()
	return LoadBalanceAnalysis(t, metric)
}
