package analysis

import (
	"fmt"

	"perfknow/internal/perfdmf"
)

// This file implements trial algebra in the spirit of CUBE's Performance
// Algebra (Wolf & Mohr, cited in §IV): difference, merge and aggregation
// operations over whole parallel profiles, so cross-experiment analyses
// ("what changed between these two builds?") compose like values.

// DiffTrialsRow is the row-oriented oracle for DiffTrials.
func DiffTrialsRow(a, b *perfdmf.Trial) (*perfdmf.Trial, error) {
	if a.Threads != b.Threads {
		return nil, fmt.Errorf("analysis: diff of %d-thread and %d-thread trials", a.Threads, b.Threads)
	}
	out := perfdmf.NewTrial(a.App, a.Experiment, a.Name+" - "+b.Name, a.Threads)
	out.Metadata["algebra"] = "difference"
	out.Metadata["minuend"] = a.Name
	out.Metadata["subtrahend"] = b.Name
	var metrics []string
	for _, m := range a.Metrics {
		if b.HasMetric(m) {
			metrics = append(metrics, m)
			out.AddMetric(m)
		}
	}
	if len(metrics) == 0 {
		return nil, fmt.Errorf("analysis: trials %q and %q share no metrics", a.Name, b.Name)
	}
	names := unionEventNames(a, b)
	for _, name := range names {
		ea, eb := a.Event(name), b.Event(name)
		ne := out.EnsureEvent(name)
		for th := 0; th < out.Threads; th++ {
			ne.Calls[th] = callsAt(ea, th) - callsAt(eb, th)
			for _, m := range metrics {
				incA, excA := valuesAt(ea, m, th)
				incB, excB := valuesAt(eb, m, th)
				ne.SetValue(m, th, incA-incB, excA-excB)
			}
		}
	}
	return out, nil
}

// MergeTrialsRow is the row-oriented oracle for MergeTrials.
func MergeTrialsRow(trials []*perfdmf.Trial) (*perfdmf.Trial, error) {
	if len(trials) == 0 {
		return nil, fmt.Errorf("analysis: merge of no trials")
	}
	first := trials[0]
	for _, t := range trials[1:] {
		if t.Threads != first.Threads {
			return nil, fmt.Errorf("analysis: merge of mismatched thread counts (%d vs %d)",
				t.Threads, first.Threads)
		}
	}
	metrics := append([]string(nil), first.Metrics...)
	for _, t := range trials[1:] {
		var keep []string
		for _, m := range metrics {
			if t.HasMetric(m) {
				keep = append(keep, m)
			}
		}
		metrics = keep
	}
	if len(metrics) == 0 {
		return nil, fmt.Errorf("analysis: merged trials share no metrics")
	}
	out := perfdmf.NewTrial(first.App, first.Experiment, "merged", first.Threads)
	out.Metadata["algebra"] = "merge"
	out.Metadata["members"] = fmt.Sprintf("%d", len(trials))
	for _, m := range metrics {
		out.AddMetric(m)
	}
	for _, t := range trials {
		for _, e := range t.Events {
			ne := out.EnsureEvent(e.Name)
			for th := 0; th < out.Threads; th++ {
				ne.Calls[th] += callsAt(e, th)
				for _, m := range metrics {
					inc, exc := valuesAt(e, m, th)
					ne.AddValue(m, th, inc, exc)
				}
			}
		}
	}
	return out, nil
}

// RelativeChange summarizes a diff trial (or any trial) against a baseline:
// per flat event, the fractional change of the metric's mean exclusive
// value, sorted by descending absolute change. Events below minBase in the
// baseline are skipped as noise.
type Change struct {
	Event    string
	Base     float64
	Other    float64
	Fraction float64 // (Other-Base)/Base
}

// RelativeChangeRow is the row-oriented oracle for RelativeChange.
func RelativeChangeRow(base, other *perfdmf.Trial, metric string, minBase float64) []Change {
	var out []Change
	for _, e := range base.Events {
		if e.IsCallpath() {
			continue
		}
		bv := perfdmf.Mean(e.Exclusive[metric])
		if bv < minBase || bv == 0 {
			continue
		}
		oe := other.Event(e.Name)
		if oe == nil {
			continue
		}
		ov := perfdmf.Mean(oe.Exclusive[metric])
		out = append(out, Change{Event: e.Name, Base: bv, Other: ov, Fraction: (ov - bv) / bv})
	}
	sortChanges(out)
	return out
}

func sortChanges(cs []Change) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && abs(cs[j].Fraction) > abs(cs[j-1].Fraction); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func unionEventNames(a, b *perfdmf.Trial) []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range a.Events {
		if !seen[e.Name] {
			seen[e.Name] = true
			out = append(out, e.Name)
		}
	}
	for _, e := range b.Events {
		if !seen[e.Name] {
			seen[e.Name] = true
			out = append(out, e.Name)
		}
	}
	return out
}

func callsAt(e *perfdmf.Event, th int) float64 {
	if e == nil || th >= len(e.Calls) {
		return 0
	}
	return e.Calls[th]
}

func valuesAt(e *perfdmf.Event, metric string, th int) (inc, exc float64) {
	if e == nil {
		return 0, 0
	}
	return at(e.Inclusive[metric], th), at(e.Exclusive[metric], th)
}
