package analysis

import (
	"math"
	"testing"

	"perfknow/internal/perfdmf"
)

func algebraTrial(name string, scale float64, extraEvent bool) *perfdmf.Trial {
	t := perfdmf.NewTrial("app", "exp", name, 2)
	t.AddMetric("TIME")
	t.AddMetric("CPU_CYCLES")
	a := t.EnsureEvent("a")
	b := t.EnsureEvent("b")
	for th := 0; th < 2; th++ {
		a.Calls[th] = 2
		a.SetValue("TIME", th, 100*scale, 80*scale)
		a.SetValue("CPU_CYCLES", th, 1000*scale, 800*scale)
		b.Calls[th] = 1
		b.SetValue("TIME", th, 50*scale, 50*scale)
		b.SetValue("CPU_CYCLES", th, 500*scale, 500*scale)
	}
	if extraEvent {
		c := t.EnsureEvent("only_here")
		for th := 0; th < 2; th++ {
			c.SetValue("TIME", th, 10, 10)
		}
	}
	return t
}

func TestDiffTrials(t *testing.T) {
	x := algebraTrial("x", 2, true)
	y := algebraTrial("y", 1, false)
	d, err := DiffTrials(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.Event("a").Exclusive["TIME"][0]; got != 80 {
		t.Fatalf("a diff = %g, want 80", got)
	}
	if got := d.Event("a").Calls[1]; got != 0 {
		t.Fatalf("a calls diff = %g", got)
	}
	// Event only in x shows as its full value.
	if got := d.Event("only_here").Inclusive["TIME"][0]; got != 10 {
		t.Fatalf("only_here diff = %g", got)
	}
	if d.Metadata["algebra"] != "difference" {
		t.Fatalf("metadata: %v", d.Metadata)
	}
	// Improvement is negative.
	d2, err := DiffTrials(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Event("a").Exclusive["TIME"][0]; got != -80 {
		t.Fatalf("reverse diff = %g, want -80", got)
	}
}

func TestDiffTrialsErrors(t *testing.T) {
	x := algebraTrial("x", 1, false)
	y := perfdmf.NewTrial("app", "exp", "y", 4)
	if _, err := DiffTrials(x, y); err == nil {
		t.Fatal("mismatched threads accepted")
	}
	z := perfdmf.NewTrial("app", "exp", "z", 2)
	z.AddMetric("OTHER")
	z.EnsureEvent("a")
	if _, err := DiffTrials(x, z); err == nil {
		t.Fatal("no shared metrics accepted")
	}
}

func TestMergeTrials(t *testing.T) {
	x := algebraTrial("x", 1, false)
	y := algebraTrial("y", 2, true)
	m, err := MergeTrials([]*perfdmf.Trial{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// a exclusive TIME = 80 + 160 = 240.
	if got := m.Event("a").Exclusive["TIME"][0]; got != 240 {
		t.Fatalf("merged a = %g, want 240", got)
	}
	if got := m.Event("a").Calls[0]; got != 4 {
		t.Fatalf("merged calls = %g, want 4", got)
	}
	if m.Event("only_here") == nil {
		t.Fatal("union event missing")
	}
	if _, err := MergeTrials(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	bad := perfdmf.NewTrial("a", "e", "bad", 7)
	if _, err := MergeTrials([]*perfdmf.Trial{x, bad}); err == nil {
		t.Fatal("mismatched merge accepted")
	}
}

func TestRelativeChange(t *testing.T) {
	base := algebraTrial("base", 1, false)
	// Other: a doubles, b halves.
	other := perfdmf.NewTrial("app", "exp", "other", 2)
	other.AddMetric("TIME")
	for th := 0; th < 2; th++ {
		other.EnsureEvent("a").SetValue("TIME", th, 0, 160)
		other.EnsureEvent("b").SetValue("TIME", th, 0, 25)
	}
	changes := RelativeChange(base, other, "TIME", 0.1)
	if len(changes) != 2 {
		t.Fatalf("changes: %+v", changes)
	}
	// a: (160-80)/80 = +1.0; b: (25-50)/50 = -0.5. Sorted by |fraction|.
	if changes[0].Event != "a" || math.Abs(changes[0].Fraction-1.0) > 1e-12 {
		t.Fatalf("changes[0] = %+v", changes[0])
	}
	if changes[1].Event != "b" || math.Abs(changes[1].Fraction+0.5) > 1e-12 {
		t.Fatalf("changes[1] = %+v", changes[1])
	}
	// minBase filters everything.
	if got := RelativeChange(base, other, "TIME", 1e9); len(got) != 0 {
		t.Fatalf("minBase filter failed: %+v", got)
	}
}

// Property: Diff(Merge([a,b]), b) == a on shared events and metrics.
func TestAlgebraRoundTrip(t *testing.T) {
	a := algebraTrial("a", 3, false)
	b := algebraTrial("b", 1, false)
	m, err := MergeTrials([]*perfdmf.Trial{a, b})
	if err != nil {
		t.Fatal(err)
	}
	d, err := DiffTrials(m, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		for th := 0; th < 2; th++ {
			want := a.Event(name).Exclusive["TIME"][th]
			got := d.Event(name).Exclusive["TIME"][th]
			if math.Abs(want-got) > 1e-9 {
				t.Fatalf("%s thread %d: %g != %g", name, th, got, want)
			}
		}
	}
}
