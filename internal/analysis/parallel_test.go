package analysis

import (
	"fmt"
	"reflect"
	"testing"

	"perfknow/internal/parallel"
	"perfknow/internal/perfdmf"
)

// wideTrial builds a trial big enough that the parallel paths actually fan
// out (many events, many threads).
func wideTrial(threads, events int) *perfdmf.Trial {
	t := perfdmf.NewTrial("app", "exp", "wide", threads)
	t.AddMetric(perfdmf.TimeMetric)
	t.AddMetric("CYCLES")
	for j := 0; j < events; j++ {
		e := t.EnsureEvent(fmt.Sprintf("event_%02d", j))
		for th := 0; th < threads; th++ {
			v := float64((th%5)*1000 + j*17 + 1)
			e.SetValue(perfdmf.TimeMetric, th, v, v*0.8)
			e.SetValue("CYCLES", th, v*1500, v*1200)
		}
	}
	return t
}

// TestAnalysisDeterministicAcrossWorkerCounts runs the parallelized
// operations at one and at eight workers and requires identical output.
func TestAnalysisDeterministicAcrossWorkerCounts(t *testing.T) {
	defer parallel.SetDefaultWorkers(0)
	tr := wideTrial(64, 40)

	type snapshot struct {
		stats   []EventStat
		cluster *Clustering
		derived *perfdmf.Trial
	}
	take := func() snapshot {
		st := ExclusiveStats(tr, perfdmf.TimeMetric)
		cl, err := KMeans(tr, perfdmf.TimeMetric, 5, 50)
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := DeriveMetric(tr, "CYCLES", perfdmf.TimeMetric, OpDivide)
		if err != nil {
			t.Fatal(err)
		}
		return snapshot{stats: st, cluster: cl, derived: d}
	}

	parallel.SetDefaultWorkers(1)
	seq := take()
	parallel.SetDefaultWorkers(8)
	par := take()

	if !reflect.DeepEqual(seq.stats, par.stats) {
		t.Error("ExclusiveStats differs between -j 1 and -j 8")
	}
	if !reflect.DeepEqual(seq.cluster, par.cluster) {
		t.Error("KMeans differs between -j 1 and -j 8")
	}
	if !reflect.DeepEqual(seq.derived, par.derived) {
		t.Error("DeriveMetric differs between -j 1 and -j 8")
	}
}

func TestDeriveMetricBatch(t *testing.T) {
	trials := []*perfdmf.Trial{wideTrial(8, 10), wideTrial(16, 10), wideTrial(32, 10)}
	out, name, err := DeriveMetricBatch(trials, "CYCLES", perfdmf.TimeMetric, OpDivide)
	if err != nil {
		t.Fatal(err)
	}
	if want := DeriveMetricName("CYCLES", perfdmf.TimeMetric, OpDivide); name != want {
		t.Fatalf("name = %q, want %q", name, want)
	}
	if len(out) != len(trials) {
		t.Fatalf("got %d trials, want %d", len(out), len(trials))
	}
	for i, d := range out {
		if d.Threads != trials[i].Threads {
			t.Fatalf("trial %d: threads %d, want %d (input order lost?)", i, d.Threads, trials[i].Threads)
		}
		if !d.HasMetric(name) {
			t.Fatalf("trial %d lacks derived metric", i)
		}
		// Input trials must be untouched (DeriveMetric clones).
		if trials[i].HasMetric(name) {
			t.Fatalf("trial %d: input mutated", i)
		}
		solo, _, err := DeriveMetric(trials[i], "CYCLES", perfdmf.TimeMetric, OpDivide)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(solo, d) {
			t.Fatalf("trial %d: batch result differs from individual DeriveMetric", i)
		}
	}
}

func TestDeriveMetricBatchErrors(t *testing.T) {
	if _, _, err := DeriveMetricBatch(nil, "A", "B", OpAdd); err == nil {
		t.Fatal("empty batch should error")
	}
	trials := []*perfdmf.Trial{wideTrial(4, 4)}
	if _, _, err := DeriveMetricBatch(trials, "NO_SUCH", perfdmf.TimeMetric, OpAdd); err == nil {
		t.Fatal("unknown metric should error")
	}
}
