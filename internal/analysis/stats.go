package analysis

import (
	"fmt"
	"sort"
	"strconv"

	"perfknow/internal/parallel"
	"perfknow/internal/perfdmf"
)

// EventStat summarizes one event's metric across threads.
type EventStat struct {
	Event   string
	Mean    float64
	StdDev  float64
	Min     float64
	Max     float64
	Total   float64
	Threads int
}

// ExclusiveStatsRow is the row-oriented oracle for ExclusiveStats.
func ExclusiveStatsRow(t *perfdmf.Trial, metric string) []EventStat {
	return eventStats(t, metric, false)
}

// InclusiveStatsRow is the row-oriented oracle for InclusiveStats.
func InclusiveStatsRow(t *perfdmf.Trial, metric string) []EventStat {
	return eventStats(t, metric, true)
}

func eventStats(t *perfdmf.Trial, metric string, inclusive bool) []EventStat {
	// Per-event rows are independent reductions over read-only slices, so
	// they fan out; the slot-per-event result plus the name-tiebroken sort
	// keeps the output order deterministic.
	rows := make([]*EventStat, len(t.Events))
	parallel.Each(len(t.Events), 0, func(i int) {
		e := t.Events[i]
		if e.IsCallpath() {
			return
		}
		vals := e.Exclusive[metric]
		if inclusive {
			vals = e.Inclusive[metric]
		}
		if len(vals) == 0 {
			return
		}
		s := EventStat{Event: e.Name, Threads: t.Threads, Mean: perfdmf.Mean(vals),
			StdDev: perfdmf.StdDev(vals), Total: perfdmf.Sum(vals), Min: vals[0], Max: vals[0]}
		for _, v := range vals {
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
		rows[i] = &s
	})
	var out []EventStat
	for _, s := range rows {
		if s != nil {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mean != out[j].Mean {
			return out[i].Mean > out[j].Mean
		}
		return out[i].Event < out[j].Event
	})
	return out
}

// LoadBalance reports the imbalance of one event across threads: the ratio
// of the standard deviation to the mean of per-thread exclusive values (the
// paper's imbalance indicator, flagged above 0.25), and the event's share of
// total runtime (its severity, flagged above 5%).
type LoadBalance struct {
	Event           string
	Mean            float64
	StdDev          float64
	Ratio           float64 // StdDev / Mean
	FractionOfTotal float64 // mean exclusive / mean inclusive of main
}

// LoadBalanceAnalysis computes per-event load balance for the metric,
// sorted by descending Ratio. Events with zero mean are skipped.
func LoadBalanceAnalysis(t *perfdmf.Trial, metric string) []LoadBalance {
	main := t.MainEvent(metric)
	mainVal := 0.0
	if main != nil {
		mainVal = perfdmf.Mean(main.Inclusive[metric])
	}
	var out []LoadBalance
	for _, e := range t.Events {
		if e.IsCallpath() {
			continue
		}
		vals := e.Exclusive[metric]
		mean := perfdmf.Mean(vals)
		if mean == 0 {
			continue
		}
		lb := LoadBalance{Event: e.Name, Mean: mean, StdDev: perfdmf.StdDev(vals)}
		lb.Ratio = lb.StdDev / mean
		if mainVal > 0 {
			lb.FractionOfTotal = mean / mainVal
		}
		out = append(out, lb)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		return out[i].Event < out[j].Event
	})
	return out
}

// EventCorrelation returns the per-thread Pearson correlation between two
// events' exclusive values of a metric — the paper's check that a thread
// finishing the inner loop early waits longer in the outer loop (strong
// negative correlation).
func EventCorrelation(t *perfdmf.Trial, metric, eventA, eventB string) (float64, error) {
	a, b := t.Event(eventA), t.Event(eventB)
	if a == nil {
		return 0, fmt.Errorf("analysis: no event %q in trial %q", eventA, t.Name)
	}
	if b == nil {
		return 0, fmt.Errorf("analysis: no event %q in trial %q", eventB, t.Name)
	}
	return perfdmf.Correlation(a.Exclusive[metric], b.Exclusive[metric]), nil
}

// MetricCorrelation returns the Pearson correlation between two metrics
// over all (flat event, thread) exclusive samples — PerfExplorer's
// cross-metric correlation analysis (e.g. "do L3 misses explain time?").
func MetricCorrelation(t *perfdmf.Trial, metricA, metricB string) (float64, error) {
	if !t.HasMetric(metricA) {
		return 0, fmt.Errorf("analysis: no metric %q in trial %q", metricA, t.Name)
	}
	if !t.HasMetric(metricB) {
		return 0, fmt.Errorf("analysis: no metric %q in trial %q", metricB, t.Name)
	}
	var xs, ys []float64
	for _, e := range t.Events {
		if e.IsCallpath() {
			continue
		}
		for th := 0; th < t.Threads; th++ {
			xs = append(xs, at(e.Exclusive[metricA], th))
			ys = append(ys, at(e.Exclusive[metricB], th))
		}
	}
	return perfdmf.Correlation(xs, ys), nil
}

// IsNested reports whether one event calls the other, judged from callpath
// events present in the trial (a callpath "... outer => ... inner ..."
// or an immediate parent/child pair).
func IsNested(t *perfdmf.Trial, outer, inner string) bool {
	for _, e := range t.Events {
		if !e.IsCallpath() {
			continue
		}
		var haveOuter bool
		cur := e.Name
		for {
			leaf := cur
			rest := ""
			if i := indexSep(cur); i >= 0 {
				leaf, rest = cur[:i], cur[i+len(perfdmf.CallpathSeparator):]
			}
			if leaf == outer {
				haveOuter = true
			} else if leaf == inner && haveOuter {
				return true
			}
			if rest == "" {
				break
			}
			cur = rest
		}
	}
	return false
}

func indexSep(s string) int {
	for i := 0; i+len(perfdmf.CallpathSeparator) <= len(s); i++ {
		if s[i:i+len(perfdmf.CallpathSeparator)] == perfdmf.CallpathSeparator {
			return i
		}
	}
	return -1
}

// SeriesPoint is one point of a scalability series.
type SeriesPoint struct {
	Threads    int
	Value      float64 // raw metric value (mean inclusive of main)
	Speedup    float64 // base value / value, scaled by base thread count
	Efficiency float64 // speedup / threads
}

// ScalingSeries computes relative speedup and efficiency across trials of
// the same application at different thread counts, using the mean inclusive
// value of the main event. Trials are ordered by their "threads" metadata
// (falling back to Trial.Threads). The smallest thread count is the base.
func ScalingSeries(trials []*perfdmf.Trial, metric string) ([]SeriesPoint, error) {
	if len(trials) == 0 {
		return nil, fmt.Errorf("analysis: ScalingSeries needs at least one trial")
	}
	pts := make([]SeriesPoint, 0, len(trials))
	for _, t := range trials {
		main := t.MainEvent(metric)
		if main == nil {
			return nil, fmt.Errorf("analysis: trial %q has no events with metric %q", t.Name, metric)
		}
		threads := t.Threads
		if s, ok := t.Metadata["threads"]; ok {
			if v, err := strconv.Atoi(s); err == nil {
				threads = v
			}
		}
		pts = append(pts, SeriesPoint{Threads: threads, Value: perfdmf.Mean(main.Inclusive[metric])})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Threads < pts[j].Threads })
	base := pts[0]
	if base.Value == 0 {
		return nil, fmt.Errorf("analysis: base trial has zero %q", metric)
	}
	for i := range pts {
		if pts[i].Value > 0 {
			pts[i].Speedup = float64(base.Threads) * base.Value / pts[i].Value
			pts[i].Efficiency = pts[i].Speedup / float64(pts[i].Threads)
		}
	}
	return pts, nil
}

// PerEventSpeedup compares each flat event between a base trial and another
// trial (typically 1 thread vs p threads): base mean exclusive * baseThreads
// / other mean exclusive. Events absent from either trial are skipped.
func PerEventSpeedup(base, other *perfdmf.Trial, metric string) map[string]float64 {
	out := make(map[string]float64)
	for _, e := range base.Events {
		if e.IsCallpath() {
			continue
		}
		o := other.Event(e.Name)
		if o == nil {
			continue
		}
		bv := perfdmf.Mean(e.Exclusive[metric])
		ov := perfdmf.Mean(o.Exclusive[metric])
		if bv > 0 && ov > 0 {
			out[e.Name] = bv / ov
		}
	}
	return out
}
