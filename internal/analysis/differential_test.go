package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"perfknow/internal/perfdmf"
)

// The differential harness: every analysis operation runs through both the
// columnar engine (the public functions) and the retained row-oriented
// oracle (the *Row functions) over ~100 generated trials — varied thread
// counts, metrics, callpaths, absent metrics, unregistered extras, NaN
// (including payloads), ±Inf and -0 values, zero-event and single-event
// shapes — and the results must be byte-identical, down to float bit
// patterns. Comparison happens on a canonical textual dump that renders
// every float as its IEEE bits, so signed zeros and infinities count;
// NaNs are canonicalized (see dumpFloats for why payloads are exempt).
//
// On mismatch the harness writes a full report (set DIFFERENTIAL_REPORT to
// choose the path; CI uploads it as an artifact) and fails.

var metricPool = []string{perfdmf.TimeMetric, "PAPI_FP_OPS", "PAPI_L2_TCM", "BYTES"}

func genValue(r *rand.Rand) float64 {
	switch r.Intn(14) {
	case 0:
		return math.NaN()
	case 1:
		// A NaN with a distinctive payload: only bit-exact handling keeps it.
		return math.Float64frombits(0x7ff8_0000_0000_1234)
	case 2:
		return math.Inf(1)
	case 3:
		return math.Inf(-1)
	case 4:
		return 0
	case 5:
		return math.Copysign(0, -1)
	default:
		return math.Trunc(r.Float64()*1e9) / 64
	}
}

// genTrial builds a valid trial with adversarial variety: some events
// missing some registered metrics entirely, some with exclusive-only data,
// unregistered extra metrics, callpath events, groups, metadata.
func genTrial(r *rand.Rand, name string, threads int) *perfdmf.Trial {
	t := perfdmf.NewTrial("app", "exp", name, threads)
	nm := 1 + r.Intn(len(metricPool))
	for i := 0; i < nm; i++ {
		t.AddMetric(metricPool[i])
	}
	t.Metadata["threads"] = strconv.Itoa(threads)
	if r.Intn(2) == 0 {
		t.Metadata["host"] = "node" + strconv.Itoa(r.Intn(4))
	}
	nev := r.Intn(10)
	for i := 0; i < nev; i++ {
		e := t.EnsureEvent("f" + strconv.Itoa(i))
		for th := 0; th < threads; th++ {
			e.Calls[th] = float64(r.Intn(100))
		}
		if r.Intn(4) == 0 {
			e.Groups = []string{"MPI", "G" + strconv.Itoa(r.Intn(2))}
		}
		for _, m := range t.Metrics {
			switch r.Intn(5) {
			case 0: // metric absent on this event
				delete(e.Inclusive, m)
				delete(e.Exclusive, m)
			case 1: // exclusive-only (valid: Validate only requires inc ⇒ exc)
				delete(e.Inclusive, m)
				for th := 0; th < threads; th++ {
					e.Exclusive[m][th] = genValue(r)
				}
			default:
				for th := 0; th < threads; th++ {
					e.SetValue(m, th, genValue(r), genValue(r))
				}
			}
		}
		if r.Intn(4) == 0 { // unregistered extra metric
			vals := make([]float64, threads)
			for th := range vals {
				vals[th] = genValue(r)
			}
			e.Exclusive["EXTRA"] = vals
		}
	}
	if nev >= 2 { // callpath events
		cp := t.EnsureEvent("f0" + perfdmf.CallpathSeparator + "f1")
		for th := 0; th < threads; th++ {
			cp.SetValue(t.Metrics[0], th, genValue(r), genValue(r))
		}
	}
	return t
}

// --- canonical bit-exact dumps -----------------------------------------

func dumpFloats(sb *strings.Builder, xs []float64) {
	for _, x := range xs {
		b := math.Float64bits(x)
		if x != x {
			// Go does not specify which NaN payload survives arithmetic —
			// the surviving bits follow the hardware operand order, which
			// the compiler picks per code site (`a+b` and `s[i]+=v` differ
			// in practice). All NaNs therefore compare equal here; ±Inf,
			// -0 and every finite value stay exact-bit. Storage-level NaN
			// payload preservation (no arithmetic) is pinned exactly by
			// the perfdmf round-trip tests.
			b = 0x7ff8_0000_0000_0001
		}
		fmt.Fprintf(sb, " %016x", b)
	}
	sb.WriteByte('\n')
}

func dumpTrial(tr *perfdmf.Trial) string {
	if tr == nil {
		return "<nil trial>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trial %q/%q/%q threads=%d\nmetrics=%q\n", tr.App, tr.Experiment, tr.Name, tr.Threads, tr.Metrics)
	keys := make([]string, 0, len(tr.Metadata))
	for k := range tr.Metadata {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "meta %q=%q\n", k, tr.Metadata[k])
	}
	for _, e := range tr.Events {
		fmt.Fprintf(&sb, "event %q groups=%q nilgroups=%v calls=", e.Name, e.Groups, e.Groups == nil)
		dumpFloats(&sb, e.Calls)
		for _, side := range []struct {
			tag string
			m   map[string][]float64
		}{{"inc", e.Inclusive}, {"exc", e.Exclusive}} {
			ms := make([]string, 0, len(side.m))
			for m := range side.m {
				ms = append(ms, m)
			}
			sort.Strings(ms)
			for _, m := range ms {
				fmt.Fprintf(&sb, " %s %q =", side.tag, m)
				dumpFloats(&sb, side.m[m])
			}
		}
	}
	return sb.String()
}

func dumpTrialResult(tr *perfdmf.Trial, name string, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	return "name=" + name + "\n" + dumpTrial(tr)
}

func dumpStats(stats []EventStat) string {
	var sb strings.Builder
	for _, s := range stats {
		fmt.Fprintf(&sb, "%q threads=%d", s.Event, s.Threads)
		dumpFloats(&sb, []float64{s.Mean, s.StdDev, s.Min, s.Max, s.Total})
	}
	return sb.String()
}

func dumpClustering(c *Clustering, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "k=%d events=%q assign=%v sizes=%v inertia=", c.K, c.Events, c.Assignment, c.Sizes)
	dumpFloats(&sb, []float64{c.Inertia})
	for _, cent := range c.Centroids {
		sb.WriteString("centroid")
		dumpFloats(&sb, cent)
	}
	return sb.String()
}

func dumpChanges(cs []Change) string {
	var sb strings.Builder
	for _, c := range cs {
		fmt.Fprintf(&sb, "%q", c.Event)
		dumpFloats(&sb, []float64{c.Base, c.Other, c.Fraction})
	}
	return sb.String()
}

// --- the harness --------------------------------------------------------

type mismatchLog struct {
	entries []string
}

func (ml *mismatchLog) check(desc, row, col string) {
	if row != col {
		ml.entries = append(ml.entries,
			fmt.Sprintf("== %s ==\n-- row oracle --\n%s\n-- columnar --\n%s\n", desc, row, col))
	}
}

func (ml *mismatchLog) finish(t *testing.T) {
	t.Helper()
	if len(ml.entries) == 0 {
		return
	}
	report := os.Getenv("DIFFERENTIAL_REPORT")
	if report == "" {
		report = filepath.Join(t.TempDir(), "differential_mismatch_report.txt")
	}
	body := strings.Join(ml.entries, "\n")
	if err := os.WriteFile(report, []byte(body), 0o644); err != nil {
		t.Logf("writing mismatch report: %v", err)
	}
	n := len(ml.entries)
	if n > 3 {
		ml.entries = ml.entries[:3]
	}
	t.Errorf("%d row/columnar mismatches (full report: %s)\n%s", n, report, strings.Join(ml.entries, "\n"))
}

func TestDifferentialEngines(t *testing.T) {
	if RowOrientedEngine() {
		t.Fatal("columnar engine must be the default")
	}
	r := rand.New(rand.NewSource(8))
	ml := &mismatchLog{}
	threadChoices := []int{1, 1, 2, 3, 4, 8, 16}
	ops := []Op{OpAdd, OpSubtract, OpMultiply, OpDivide}
	for i := 0; i < 100; i++ {
		th := threadChoices[r.Intn(len(threadChoices))]
		tr := genTrial(r, fmt.Sprintf("trial-%03d", i), th)
		sib := genTrial(r, fmt.Sprintf("sib-%03d", i), th)
		third := genTrial(r, fmt.Sprintf("third-%03d", i), th)
		if err := tr.Validate(); err != nil {
			t.Fatalf("generator produced invalid trial: %v", err)
		}
		id := func(op string) string { return fmt.Sprintf("trial %d (%d threads): %s", i, th, op) }
		m1 := tr.Metrics[r.Intn(len(tr.Metrics))]
		m2 := tr.Metrics[r.Intn(len(tr.Metrics))]

		for _, op := range ops {
			ro, rn, re := DeriveMetricRow(tr, m1, m2, op)
			co, cn, ce := DeriveMetric(tr, m1, m2, op)
			ml.check(id("DeriveMetric "+op.String()), dumpTrialResult(ro, rn, re), dumpTrialResult(co, cn, ce))
		}
		{
			ro, rn, re := DeriveMetricRow(tr, m1, "NOPE", OpDivide)
			co, cn, ce := DeriveMetric(tr, m1, "NOPE", OpDivide)
			ml.check(id("DeriveMetric missing rhs"), dumpTrialResult(ro, rn, re), dumpTrialResult(co, cn, ce))
		}
		{
			scale := genValue(r)
			ro, rn, re := DeriveScaledRow(tr, m1, scale)
			co, cn, ce := DeriveScaled(tr, m1, scale)
			ml.check(id("DeriveScaled"), dumpTrialResult(ro, rn, re), dumpTrialResult(co, cn, ce))
		}
		{
			ro, rn, re := DeriveSumRow(tr, tr.Metrics)
			co, cn, ce := DeriveSum(tr, tr.Metrics)
			ml.check(id("DeriveSum"), dumpTrialResult(ro, rn, re), dumpTrialResult(co, cn, ce))
		}
		for _, red := range []Reduction{ReduceMean, ReduceTotal, ReduceMax, ReduceMin, ReduceStdDev} {
			ml.check(id("Reduce "+red.String()), dumpTrial(ReduceRow(tr, red)), dumpTrial(Reduce(tr, red)))
		}
		{
			var names []string
			for _, e := range tr.Events {
				if r.Intn(2) == 0 {
					names = append(names, e.Name)
				}
			}
			names = append(names, "no-such-event")
			ml.check(id("ExtractEvents"), dumpTrial(ExtractEventsRow(tr, names)), dumpTrial(ExtractEvents(tr, names)))
		}
		for _, n := range []int{3, 100} {
			ml.check(id(fmt.Sprintf("TopN %d", n)),
				strings.Join(TopNRow(tr, m1, n), "|"), strings.Join(TopN(tr, m1, n), "|"))
		}
		ml.check(id("ExclusiveStats"), dumpStats(ExclusiveStatsRow(tr, m1)), dumpStats(ExclusiveStats(tr, m1)))
		ml.check(id("InclusiveStats"), dumpStats(InclusiveStatsRow(tr, m1)), dumpStats(InclusiveStats(tr, m1)))
		{
			k := 1 + r.Intn(th)
			rc, re := KMeansRow(tr, m1, k, 10)
			cc, ce := KMeans(tr, m1, k, 10)
			ml.check(id(fmt.Sprintf("KMeans k=%d", k)), dumpClustering(rc, re), dumpClustering(cc, ce))
		}
		{
			ro, re := DiffTrialsRow(tr, sib)
			co, ce := DiffTrials(tr, sib)
			ml.check(id("DiffTrials"), dumpTrialResult(ro, "", re), dumpTrialResult(co, "", ce))
		}
		{
			ro, re := MergeTrialsRow([]*perfdmf.Trial{tr, sib, third})
			co, ce := MergeTrials([]*perfdmf.Trial{tr, sib, third})
			ml.check(id("MergeTrials"), dumpTrialResult(ro, "", re), dumpTrialResult(co, "", ce))
		}
		ml.check(id("RelativeChange"),
			dumpChanges(RelativeChangeRow(tr, sib, m1, 0.5)), dumpChanges(RelativeChange(tr, sib, m1, 0.5)))

		// LinearRegression is engine-shared flat-slice code; feeding it the
		// per-event means from each engine's stats pass pins the composed
		// result too.
		rs, cs := ExclusiveStatsRow(tr, m1), ExclusiveStats(tr, m1)
		if len(rs) >= 2 && len(cs) == len(rs) {
			xs := make([]float64, len(rs))
			rys, cys := make([]float64, len(rs)), make([]float64, len(rs))
			for j := range rs {
				xs[j] = float64(j)
				rys[j], cys[j] = rs[j].Mean, cs[j].Mean
			}
			s1, i1, r1, e1 := LinearRegression(xs, rys)
			s2, i2, r2, e2 := LinearRegression(xs, cys)
			var b1, b2 strings.Builder
			fmt.Fprintf(&b1, "err=%v", e1)
			dumpFloats(&b1, []float64{s1, i1, r1})
			fmt.Fprintf(&b2, "err=%v", e2)
			dumpFloats(&b2, []float64{s2, i2, r2})
			ml.check(id("LinearRegression"), b1.String(), b2.String())
		}
	}
	ml.finish(t)
}

// TestDifferentialEdgeShapes covers the degenerate shapes: zero events,
// single event, single thread, and mismatched-thread error paths.
func TestDifferentialEdgeShapes(t *testing.T) {
	ml := &mismatchLog{}
	empty := perfdmf.NewTrial("app", "exp", "empty", 2)
	empty.AddMetric(perfdmf.TimeMetric)
	single := perfdmf.NewTrial("app", "exp", "single", 1)
	single.AddMetric(perfdmf.TimeMetric)
	single.EnsureEvent("only").SetValue(perfdmf.TimeMetric, 0, 5, 5)

	for _, tr := range []*perfdmf.Trial{empty, single} {
		ro, rn, re := DeriveMetricRow(tr, perfdmf.TimeMetric, perfdmf.TimeMetric, OpAdd)
		co, cn, ce := DeriveMetric(tr, perfdmf.TimeMetric, perfdmf.TimeMetric, OpAdd)
		ml.check(tr.Name+" DeriveMetric", dumpTrialResult(ro, rn, re), dumpTrialResult(co, cn, ce))
		ml.check(tr.Name+" Reduce", dumpTrial(ReduceRow(tr, ReduceMean)), dumpTrial(Reduce(tr, ReduceMean)))
		ml.check(tr.Name+" TopN", strings.Join(TopNRow(tr, perfdmf.TimeMetric, 5), "|"),
			strings.Join(TopN(tr, perfdmf.TimeMetric, 5), "|"))
		ml.check(tr.Name+" ExclusiveStats",
			dumpStats(ExclusiveStatsRow(tr, perfdmf.TimeMetric)), dumpStats(ExclusiveStats(tr, perfdmf.TimeMetric)))
		rc, re2 := KMeansRow(tr, perfdmf.TimeMetric, 1, 5)
		cc, ce2 := KMeans(tr, perfdmf.TimeMetric, 1, 5)
		ml.check(tr.Name+" KMeans", dumpClustering(rc, re2), dumpClustering(cc, ce2))
	}
	{
		other := perfdmf.NewTrial("app", "exp", "wide", 4)
		other.AddMetric(perfdmf.TimeMetric)
		_, re := DiffTrialsRow(single, other)
		_, ce := DiffTrials(single, other)
		ml.check("mismatched threads diff", fmt.Sprint(re), fmt.Sprint(ce))
		_, me := MergeTrialsRow([]*perfdmf.Trial{single, other})
		_, mce := MergeTrials([]*perfdmf.Trial{single, other})
		ml.check("mismatched threads merge", fmt.Sprint(me), fmt.Sprint(mce))
	}
	ml.finish(t)
}

// TestEngineSwitch pins the UseRowOriented switch: it must route the
// dispatchers to the oracle and back.
func TestEngineSwitch(t *testing.T) {
	defer UseRowOriented(false)
	UseRowOriented(true)
	if !RowOrientedEngine() {
		t.Fatal("UseRowOriented(true) not observed")
	}
	tr := perfdmf.NewTrial("app", "exp", "switch", 2)
	tr.AddMetric(perfdmf.TimeMetric)
	tr.EnsureEvent("main").SetValue(perfdmf.TimeMetric, 0, 3, 3)
	out, _, err := DeriveMetric(tr, perfdmf.TimeMetric, perfdmf.TimeMetric, OpAdd)
	if err != nil || out == nil {
		t.Fatalf("row-engine DeriveMetric failed: %v", err)
	}
	UseRowOriented(false)
	if RowOrientedEngine() {
		t.Fatal("UseRowOriented(false) not observed")
	}
}
