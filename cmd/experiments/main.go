// Command experiments regenerates every table and figure of the paper's
// evaluation section, printing paper-style rows and paper-vs-measured shape
// checks.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run F5b   # run experiments whose ID starts with F5b
//	experiments -list      # list experiment IDs
//	experiments -j 4       # fan experiments out over 4 workers
package main

import (
	"flag"
	"fmt"
	"os"

	"perfknow/internal/experiments"
	"perfknow/internal/parallel"
)

func main() {
	var (
		run  = flag.String("run", "", "run only experiments whose ID starts with this prefix")
		list = flag.Bool("list", false, "list experiment IDs and exit")
		jobs = flag.Int("j", 0, "worker goroutines for parallel execution (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*jobs)

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	results, err := experiments.RunAll(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Print(r.Format())
		fmt.Println()
	}
	fmt.Println(experiments.Summary(results))
	for _, r := range results {
		for _, c := range r.Checks {
			if !c.OK() {
				os.Exit(1)
			}
		}
	}
}
