package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"perfknow/internal/dmfclient"
	"perfknow/internal/perfdmf"
)

// startDaemon boots the real daemon on an ephemeral port and returns a
// client plus a function that terminates it via SIGTERM and waits for a
// clean exit.
func startDaemon(t *testing.T, extra ...string) (*dmfclient.Client, func() string) {
	t.Helper()
	repoDir := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-repo", repoDir,
		"-drain", "5s",
	}, extra...)

	var out, errb bytes.Buffer
	ready := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	code := -1
	go func() {
		defer wg.Done()
		code = run(args, &out, &errb, ready)
	}()

	var bound string
	select {
	case bound = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not start: %s", errb.String())
	}

	// -addr-file must agree with the bound address.
	data, err := os.ReadFile(addrFile)
	if err != nil {
		t.Fatalf("addr-file not written: %v", err)
	}
	if string(data) != bound {
		t.Fatalf("addr-file %q != bound %q", data, bound)
	}

	c, err := dmfclient.New("http://" + bound)
	if err != nil {
		t.Fatal(err)
	}
	stop := func() string {
		// The daemon traps SIGTERM via signal.NotifyContext, so signalling
		// our own process exercises the real graceful-shutdown path
		// without killing the test binary.
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if code != 0 {
			t.Fatalf("daemon exit code %d: %s", code, errb.String())
		}
		return out.String()
	}
	return c, stop
}

func TestDaemonEndToEnd(t *testing.T) {
	c, stop := startDaemon(t)

	if err := c.Health(); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	tr := perfdmf.NewTrial("app", "exp", "t1", 2)
	tr.AddMetric(perfdmf.TimeMetric)
	e := tr.EnsureEvent("main")
	for th := 0; th < 2; th++ {
		e.Calls[th] = 1
		e.SetValue(perfdmf.TimeMetric, th, 100, 100)
	}
	if err := c.Save(tr); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if apps := c.Applications(); len(apps) != 1 || apps[0] != "app" {
		t.Fatalf("Applications = %v", apps)
	}
	got, err := c.GetTrial("app", "exp", "t1")
	if err != nil {
		t.Fatalf("GetTrial: %v", err)
	}
	if got.Threads != 2 || len(got.Events) != 1 {
		t.Fatalf("round-trip mangled trial: %+v", got)
	}

	snap, err := c.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if got := snap.Gauges["repository_trials"]; got != 1 {
		t.Fatalf("metrics report %v trials, want 1", got)
	}
	if got := snap.Counters["uploads_stored_total"]; got != 1 {
		t.Fatalf("uploads_stored_total = %d, want 1", got)
	}

	out := stop()
	if !strings.Contains(out, "perfdmfd stopped") {
		t.Fatalf("missing clean shutdown message: %q", out)
	}
}

// TestDaemonDebugListener: -debug-addr serves net/http/pprof on its own
// listener, separate from the API address.
func TestDaemonDebugListener(t *testing.T) {
	debugFile := filepath.Join(t.TempDir(), "debug-addr")
	c, stop := startDaemon(t, "-debug-addr", "127.0.0.1:0", "-debug-addr-file", debugFile)
	defer stop()

	if err := c.Health(); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	data, err := os.ReadFile(debugFile)
	if err != nil {
		t.Fatalf("debug-addr-file not written: %v", err)
	}
	resp, err := http.Get("http://" + string(data) + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
	// The profiler must not leak onto the API address.
	resp2, err := http.Get(c.BaseURL() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable on the API address")
	}
}

// TestDaemonFsck: `perfdmfd -fsck` verifies the repository offline,
// prints the JSON report, and exits 0 on a clean store / 1 on a damaged
// one — without ever opening a listener.
func TestDaemonFsck(t *testing.T) {
	repoDir := t.TempDir()
	repo, err := perfdmf.OpenRepository(repoDir)
	if err != nil {
		t.Fatal(err)
	}
	tr := perfdmf.NewTrial("app", "exp", "t1", 1)
	tr.AddMetric(perfdmf.TimeMetric)
	e := tr.EnsureEvent("main")
	e.Calls[0] = 1
	e.SetValue(perfdmf.TimeMetric, 0, 100, 100)
	if err := repo.Save(tr); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-repo", repoDir, "-fsck"}, &out, &errb, nil); code != 0 {
		t.Fatalf("fsck on clean store: exit %d, stderr %s", code, errb.String())
	}
	var rep perfdmf.FsckReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("fsck output is not a JSON report: %v\n%s", err, out.String())
	}
	if rep.Trials != 1 || !rep.Clean() {
		t.Fatalf("clean-store report = %+v", rep)
	}

	// Damage the trial file: the next fsck must quarantine it and exit 1.
	var trialPath string
	err = filepath.Walk(repoDir, func(p string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(p, ".json") {
			trialPath = p
		}
		return err
	})
	if err != nil || trialPath == "" {
		t.Fatalf("trial file not found under %s (err=%v)", repoDir, err)
	}
	data, err := os.ReadFile(trialPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(trialPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if code := run([]string{"-repo", repoDir, "-fsck"}, &out, &errb, nil); code != 1 {
		t.Fatalf("fsck on damaged store: exit %d, want 1", code)
	}
	rep = perfdmf.FsckReport{}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("fsck output is not a JSON report: %v\n%s", err, out.String())
	}
	if len(rep.Quarantined) != 1 || rep.Trials != 0 {
		t.Fatalf("damaged-store report = %+v", rep)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb, nil); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestDaemonClusterFlags: -peers turns the daemon into a cluster member
// that serves its ring at GET /api/v1/cluster and publishes the ring
// identity gauges; the peer list is canonicalized, so flag order does not
// matter.
func TestDaemonClusterFlags(t *testing.T) {
	c, stop := startDaemon(t,
		"-peers", "http://node-b:7360, http://node-a:7360",
		"-replicas", "2",
		"-ring-epoch", "5",
		"-vnodes", "32",
		"-ring-seed", "7",
	)
	defer stop()

	ring, err := c.ClusterRing(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ring.Epoch != 5 || ring.Replicas != 2 || ring.VNodes != 32 || ring.Seed != 7 {
		t.Fatalf("ring = %+v", ring)
	}
	want := []string{"http://node-a:7360", "http://node-b:7360"}
	if len(ring.Peers) != 2 || ring.Peers[0] != want[0] || ring.Peers[1] != want[1] {
		t.Fatalf("peers = %v, want %v (canonical order)", ring.Peers, want)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Gauges["cluster_ring_epoch"] != 5 || m.Gauges["cluster_ring_peers"] != 2 {
		t.Fatalf("ring gauges missing from metrics: %v", m.Gauges)
	}
}

// TestDaemonStandaloneHasNoRing: without -peers the cluster endpoint
// answers 404 and no ring gauges are published.
func TestDaemonStandaloneHasNoRing(t *testing.T) {
	c, stop := startDaemon(t)
	defer stop()
	if _, err := c.ClusterRing(context.Background()); !errors.Is(err, perfdmf.ErrNotFound) {
		t.Fatalf("ClusterRing = %v, want ErrNotFound", err)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Gauges["cluster_ring_epoch"]; ok {
		t.Fatal("standalone daemon published ring gauges")
	}
}

// TestDaemonRejectsBadRing: an unsatisfiable descriptor (R > peers) must
// fail startup, not come up with broken placement.
func TestDaemonRejectsBadRing(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", "127.0.0.1:0",
		"-repo", t.TempDir(),
		"-peers", "http://node-a:7360",
		"-replicas", "3",
	}, &out, &errb, nil)
	if code != 1 {
		t.Fatalf("exit %d, want 1: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "replicas") {
		t.Fatalf("stderr should explain the ring rejection: %s", errb.String())
	}
}
