// Command perfdmfd serves a PerfDMF profile repository and the
// PerfExplorer analysis stack over HTTP/JSON, so many clients can share
// one repository: uploading trials (native JSON, TAU text, gprof),
// browsing the Application → Experiment → Trial hierarchy, running
// analysis operations and rule-based diagnosis server-side.
//
// Usage:
//
//	perfdmfd -repo DIR [-addr HOST:PORT] [-j N] [flags]
//
// The daemon answers GET /healthz for liveness probes, GET /api/v1/metrics
// with a typed telemetry snapshot (counters, gauges, latency histograms)
// and GET /api/v1/traces with recent request traces; the legacy /metrics
// path remains as a deprecated alias. With -debug-addr a second listener
// serves Go's net/http/pprof profiler, kept off the public API address. On
// SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight requests for up to -drain before exiting. With -addr ending in
// ":0" the kernel picks a free port; -addr-file writes the bound address
// to a file so scripts and tests can find the server.
//
// With -fsck the daemon does not serve at all: it verifies the repository
// (recovering orphaned temp files, quarantining corrupt trial files),
// prints the fsck report as JSON on stdout, and exits 0 if the store is
// clean or 1 otherwise — the offline twin of GET /api/v1/fsck.
//
// Streaming ingestion: POST /api/v1/streams opens a chunked upload whose
// seal stores a trial byte-identical to a whole-file upload; while chunks
// arrive, standing diagnoses (rule files named per-open or defaulted by
// -standing-rules) analyze a sliding window of -stream-window chunks and
// fire alerts over SSE at GET /api/v1/streams/{id}/alerts. See
// docs/STREAMING.md.
//
// With -peers the daemon joins a cluster: every member is started with
// the same -peers/-replicas/-ring-epoch/-vnodes/-ring-seed (and
// -ring-version for the placement hash), serves its current ring
// descriptor at GET /api/v1/cluster, and publishes cluster_* gauges in
// /api/v1/metrics. Members are ACTIVE by default (-gossip=true): each
// daemon runs a gossip agent that probes its peers every -probe-interval,
// marks them suspect after -suspect-after missed probes and dead after
// -suspect-timeout of suspicion, accepts hinted writes (durable IOUs kept
// under -hints-dir and replayed when the owner returns), adopts ring
// epoch bumps announced to ANY member (POST /api/v1/cluster) without a
// restart, and — on the lowest-URL alive member — runs an anti-entropy
// repair pass every -repair-interval that restores the replication factor
// after permanent node loss. -seed-peers adds gossip contacts beyond the
// ring (how a freshly configured member finds a running cluster). With
// -gossip=false the daemon serves the static descriptor only and healing
// falls back to the operator-driven perfexplorer -rebalance. See
// docs/CLUSTER.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"perfknow/internal/cluster"
	"perfknow/internal/dmfserver"
	"perfknow/internal/dmfwire"
	"perfknow/internal/obs"
	"perfknow/internal/parallel"
	"perfknow/internal/perfdmf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main with injectable arguments, streams and a readiness hook, for
// testing. ready (when non-nil) receives the bound address once the
// listener is open.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("perfdmfd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:7360", "listen address (use :0 for an ephemeral port)")
		addrFile  = fs.String("addr-file", "", "write the bound address to this file once listening")
		debugAddr = fs.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		debugFile = fs.String("debug-addr-file", "", "write the bound debug address to this file once listening")
		repoDir   = fs.String("repo", "perfdata", "profile repository directory")
		rulesDir  = fs.String("rules", "", "directory holding .prl rule files (default: built-in knowledge base)")
		jobs      = fs.Int("j", 0, "max concurrent analysis/diagnosis requests (0 = GOMAXPROCS)")
		maxBody   = fs.Int64("max-body", dmfserver.DefaultMaxBodyBytes, "max request body bytes")
		timeout   = fs.Duration("timeout", dmfserver.DefaultRequestTimeout, "per-request time budget")
		drain     = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		admission = fs.Duration("admission-wait", dmfserver.DefaultAdmissionWait,
			"how long a request may wait for an analysis slot before being shed with 429 (negative = shed immediately)")
		fsck = fs.Bool("fsck", false,
			"verify the repository (recover temp files, quarantine corrupt trials), print the report as JSON and exit: 0 if clean, 1 otherwise")
		streamWindow = fs.Int("stream-window", dmfserver.DefaultStreamWindow,
			"default sliding-window size in chunks for standing stream analysis (0 = cumulative; streams may override per-open)")
		standingRules = fs.String("standing-rules", "",
			"comma-separated .prl rule names (from -rules) registered as standing diagnoses on every stream that names none")
		peers = fs.String("peers", "",
			"comma-separated base URLs of every cluster member (including this one); empty = standalone")
		replicas    = fs.Int("replicas", 2, "cluster replication factor R (with -peers)")
		ringEpoch   = fs.Uint64("ring-epoch", 1, "cluster membership epoch; bump when -peers changes (with -peers)")
		vnodes      = fs.Int("vnodes", 64, "virtual nodes per peer on the placement ring (with -peers)")
		ringSeed    = fs.Uint64("ring-seed", 0, "placement hash seed; must match on every member (with -peers)")
		ringVersion = fs.Int("ring-version", 1, "placement hash version: 1 = legacy, 2 = mixed (better dispersion); must match on every member")
		gossip      = fs.Bool("gossip", true, "run the gossip membership agent (self-healing cluster); false = static descriptor only")
		self        = fs.String("self", "", "this member's base URL as listed in -peers (default: http://<bound address>)")
		seedPeers   = fs.String("seed-peers", "",
			"comma-separated base URLs to gossip with even when absent from the ring (bootstrap contacts for a joining member)")
		probeInterval = fs.Duration("probe-interval", time.Second, "gossip probe cadence")
		suspectAfter  = fs.Int("suspect-after", 3, "consecutive missed probes before a peer turns suspect")
		suspectFor    = fs.Duration("suspect-timeout", 10*time.Second, "how long a peer stays suspect before it is declared dead")
		repairEvery   = fs.Duration("repair-interval", 30*time.Second, "anti-entropy repair cadence on the leader (0 = disabled)")
		repairPause   = fs.Duration("repair-throttle", 10*time.Millisecond, "pause between repaired trials, pacing repair behind foreground traffic")
		hintsDir      = fs.String("hints-dir", "", "durable hinted-handoff directory (default: <repo>.hints; must be outside -repo)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	parallel.SetDefaultWorkers(*jobs)

	logger := slog.New(slog.NewJSONHandler(stderr, nil))

	repo, err := perfdmf.OpenRepository(*repoDir)
	if err != nil {
		return fail(logger, err)
	}
	if *fsck {
		rep, err := repo.Verify()
		if err != nil {
			return fail(logger, err)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			return fail(logger, err)
		}
		if !rep.Clean() {
			return 1
		}
		return 0
	}
	// Listen before building the cluster layer: an active member's self
	// URL defaults to the address it actually bound.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(logger, err)
	}
	bound := ln.Addr().String()
	selfURL := *self
	if selfURL == "" {
		selfURL = "http://" + bound
	}

	// With -peers (or -seed-peers) the daemon is a cluster member. The
	// descriptor built from flags is only the STARTING point: with
	// -gossip (the default) the member's agent adopts newer epochs
	// announced anywhere in the cluster and heals placement on its own;
	// with -gossip=false the descriptor is static, as in the original
	// client-routed design.
	var ring *dmfwire.Ring
	var node *cluster.Agent
	var reg *obs.Registry
	if *peers != "" || *seedPeers != "" {
		rpeers := splitPeers(*peers)
		r := dmfwire.Ring{
			Epoch:    *ringEpoch,
			Replicas: *replicas,
			VNodes:   *vnodes,
			Seed:     *ringSeed,
			Version:  *ringVersion,
			Peers:    rpeers,
		}
		if len(rpeers) == 0 {
			// Joining purely via seeds: start as a self-only ring and let
			// gossip deliver the real (higher-epoch) descriptor.
			r.Peers = []string{selfURL}
			r.Replicas = 1
		}
		canon := r.Canonical()
		if err := canon.Validate(); err != nil {
			return fail(logger, err)
		}
		ring = &canon
		if *gossip {
			hd := *hintsDir
			if hd == "" {
				// Sibling of the repository, NEVER inside it: the
				// repository walks every subdirectory as profile data.
				hd = strings.TrimSuffix(*repoDir, "/") + ".hints"
			}
			reg = obs.NewRegistry()
			node, err = cluster.NewAgent(cluster.AgentConfig{
				Self:           selfURL,
				Ring:           canon,
				SeedPeers:      splitPeers(*seedPeers),
				ProbeInterval:  *probeInterval,
				SuspectAfter:   *suspectAfter,
				SuspectTimeout: *suspectFor,
				RepairInterval: *repairEvery,
				RepairThrottle: *repairPause,
				HintsDir:       hd,
				Logger:         logger,
				Registry:       reg,
			})
			if err != nil {
				return fail(logger, err)
			}
		}
	}

	cfg := dmfserver.Config{
		Repo:           repo,
		RulesDir:       *rulesDir,
		Jobs:           *jobs,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		AdmissionWait:  *admission,
		Logger:         logger,
		Ring:           ring,
		Registry:       reg,
		StreamWindow:   normalizeStreamWindow(*streamWindow),
		StandingRules:  splitPeers(*standingRules),
	}
	if node != nil {
		cfg.Node = node
	}
	srv, err := dmfserver.New(cfg)
	if err != nil {
		return fail(logger, err)
	}
	defer srv.Close() // removes the owned temp assets dir, if any
	if node != nil {
		node.Start()
		defer node.Close()
		logger.Info("cluster agent running", "self", selfURL,
			"epoch", node.Ring().Epoch, "peers", len(node.Ring().Peers),
			"probe", (*probeInterval).String(), "repair", (*repairEvery).String())
	}

	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			return fail(logger, err)
		}
	}
	if ready != nil {
		ready <- bound
	}
	fmt.Fprintf(stdout, "perfdmfd listening on %s (repo %s)\n", bound, *repoDir)
	logger.Info("listening", "addr", bound, "repo", *repoDir, "jobs", parallel.Workers(*jobs))

	httpSrv := srv.HTTPServer(bound)

	// The profiler listens on its own address so operational tooling can
	// reach /debug/pprof without exposing it beside the public API.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fail(logger, err)
		}
		dbound := dln.Addr().String()
		if *debugFile != "" {
			if err := os.WriteFile(*debugFile, []byte(dbound), 0o644); err != nil {
				return fail(logger, err)
			}
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv := &http.Server{Handler: mux}
		defer debugSrv.Close()
		go func() { _ = debugSrv.Serve(dln) }()
		logger.Info("debug listening", "addr", dbound)
	}

	// Serve until a termination signal arrives, then drain connections.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fail(logger, err)
		}
	case <-ctx.Done():
		logger.Info("shutting down", "drain", (*drain).String())
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			logger.Warn("drain incomplete, closing", "err", err)
			_ = httpSrv.Close()
		}
		<-errc // Serve has returned ErrServerClosed
	}
	logger.Info("stopped")
	fmt.Fprintln(stdout, "perfdmfd stopped")
	return 0
}

func fail(logger *slog.Logger, err error) int {
	logger.Error("fatal", "err", err)
	return 1
}

// normalizeStreamWindow maps the flag's "0 = cumulative" convention onto
// the Config convention (0 = library default, negative = cumulative).
func normalizeStreamWindow(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

// splitPeers parses a comma-separated list flag (-peers, -standing-rules),
// ignoring blanks.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
