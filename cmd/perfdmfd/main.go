// Command perfdmfd serves a PerfDMF profile repository and the
// PerfExplorer analysis stack over HTTP/JSON, so many clients can share
// one repository: uploading trials (native JSON, TAU text, gprof),
// browsing the Application → Experiment → Trial hierarchy, running
// analysis operations and rule-based diagnosis server-side.
//
// Usage:
//
//	perfdmfd -repo DIR [-addr HOST:PORT] [-j N] [flags]
//
// The daemon answers GET /healthz for liveness probes, GET /api/v1/metrics
// with a typed telemetry snapshot (counters, gauges, latency histograms)
// and GET /api/v1/traces with recent request traces; the legacy /metrics
// path remains as a deprecated alias. With -debug-addr a second listener
// serves Go's net/http/pprof profiler, kept off the public API address. On
// SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight requests for up to -drain before exiting. With -addr ending in
// ":0" the kernel picks a free port; -addr-file writes the bound address
// to a file so scripts and tests can find the server.
//
// With -fsck the daemon does not serve at all: it verifies the repository
// (recovering orphaned temp files, quarantining corrupt trial files),
// prints the fsck report as JSON on stdout, and exits 0 if the store is
// clean or 1 otherwise — the offline twin of GET /api/v1/fsck.
//
// Streaming ingestion: POST /api/v1/streams opens a chunked upload whose
// seal stores a trial byte-identical to a whole-file upload; while chunks
// arrive, standing diagnoses (rule files named per-open or defaulted by
// -standing-rules) analyze a sliding window of -stream-window chunks and
// fire alerts over SSE at GET /api/v1/streams/{id}/alerts. See
// docs/STREAMING.md.
//
// With -peers the daemon joins a static cluster: every member is started
// with the same -peers/-replicas/-ring-epoch/-vnodes/-ring-seed, serves
// the resulting ring descriptor at GET /api/v1/cluster, and publishes
// cluster_ring_* gauges in /api/v1/metrics. Data placement and
// replication are entirely client-side (see perfexplorer -cluster and
// docs/CLUSTER.md); the daemon itself stays a plain single-node store.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"perfknow/internal/dmfserver"
	"perfknow/internal/dmfwire"
	"perfknow/internal/parallel"
	"perfknow/internal/perfdmf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main with injectable arguments, streams and a readiness hook, for
// testing. ready (when non-nil) receives the bound address once the
// listener is open.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("perfdmfd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:7360", "listen address (use :0 for an ephemeral port)")
		addrFile  = fs.String("addr-file", "", "write the bound address to this file once listening")
		debugAddr = fs.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		debugFile = fs.String("debug-addr-file", "", "write the bound debug address to this file once listening")
		repoDir   = fs.String("repo", "perfdata", "profile repository directory")
		rulesDir  = fs.String("rules", "", "directory holding .prl rule files (default: built-in knowledge base)")
		jobs      = fs.Int("j", 0, "max concurrent analysis/diagnosis requests (0 = GOMAXPROCS)")
		maxBody   = fs.Int64("max-body", dmfserver.DefaultMaxBodyBytes, "max request body bytes")
		timeout   = fs.Duration("timeout", dmfserver.DefaultRequestTimeout, "per-request time budget")
		drain     = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		admission = fs.Duration("admission-wait", dmfserver.DefaultAdmissionWait,
			"how long a request may wait for an analysis slot before being shed with 429 (negative = shed immediately)")
		fsck = fs.Bool("fsck", false,
			"verify the repository (recover temp files, quarantine corrupt trials), print the report as JSON and exit: 0 if clean, 1 otherwise")
		streamWindow = fs.Int("stream-window", dmfserver.DefaultStreamWindow,
			"default sliding-window size in chunks for standing stream analysis (0 = cumulative; streams may override per-open)")
		standingRules = fs.String("standing-rules", "",
			"comma-separated .prl rule names (from -rules) registered as standing diagnoses on every stream that names none")
		peers = fs.String("peers", "",
			"comma-separated base URLs of every cluster member (including this one); empty = standalone")
		replicas  = fs.Int("replicas", 2, "cluster replication factor R (with -peers)")
		ringEpoch = fs.Uint64("ring-epoch", 1, "cluster membership epoch; bump when -peers changes (with -peers)")
		vnodes    = fs.Int("vnodes", 64, "virtual nodes per peer on the placement ring (with -peers)")
		ringSeed  = fs.Uint64("ring-seed", 0, "placement hash seed; must match on every member (with -peers)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	parallel.SetDefaultWorkers(*jobs)

	logger := slog.New(slog.NewJSONHandler(stderr, nil))

	repo, err := perfdmf.OpenRepository(*repoDir)
	if err != nil {
		return fail(logger, err)
	}
	if *fsck {
		rep, err := repo.Verify()
		if err != nil {
			return fail(logger, err)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			return fail(logger, err)
		}
		if !rep.Clean() {
			return 1
		}
		return 0
	}
	// With -peers the daemon declares itself a member of a static cluster:
	// every member is started with the identical descriptor, serves it at
	// GET /api/v1/cluster, and cluster-routing clients (perfexplorer
	// -cluster, cluster.ShardedStore) cross-check it before placing data.
	var ring *dmfwire.Ring
	if *peers != "" {
		r := dmfwire.Ring{
			Epoch:    *ringEpoch,
			Replicas: *replicas,
			VNodes:   *vnodes,
			Seed:     *ringSeed,
			Peers:    splitPeers(*peers),
		}
		canon := r.Canonical()
		if err := canon.Validate(); err != nil {
			return fail(logger, err)
		}
		ring = &canon
	}

	srv, err := dmfserver.New(dmfserver.Config{
		Repo:           repo,
		RulesDir:       *rulesDir,
		Jobs:           *jobs,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		AdmissionWait:  *admission,
		Logger:         logger,
		Ring:           ring,
		StreamWindow:   normalizeStreamWindow(*streamWindow),
		StandingRules:  splitPeers(*standingRules),
	})
	if err != nil {
		return fail(logger, err)
	}
	defer srv.Close() // removes the owned temp assets dir, if any

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(logger, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			return fail(logger, err)
		}
	}
	if ready != nil {
		ready <- bound
	}
	fmt.Fprintf(stdout, "perfdmfd listening on %s (repo %s)\n", bound, *repoDir)
	logger.Info("listening", "addr", bound, "repo", *repoDir, "jobs", parallel.Workers(*jobs))

	httpSrv := srv.HTTPServer(bound)

	// The profiler listens on its own address so operational tooling can
	// reach /debug/pprof without exposing it beside the public API.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fail(logger, err)
		}
		dbound := dln.Addr().String()
		if *debugFile != "" {
			if err := os.WriteFile(*debugFile, []byte(dbound), 0o644); err != nil {
				return fail(logger, err)
			}
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv := &http.Server{Handler: mux}
		defer debugSrv.Close()
		go func() { _ = debugSrv.Serve(dln) }()
		logger.Info("debug listening", "addr", dbound)
	}

	// Serve until a termination signal arrives, then drain connections.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fail(logger, err)
		}
	case <-ctx.Done():
		logger.Info("shutting down", "drain", (*drain).String())
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			logger.Warn("drain incomplete, closing", "err", err)
			_ = httpSrv.Close()
		}
		<-errc // Serve has returned ErrServerClosed
	}
	logger.Info("stopped")
	fmt.Fprintln(stdout, "perfdmfd stopped")
	return 0
}

func fail(logger *slog.Logger, err error) int {
	logger.Error("fatal", "err", err)
	return 1
}

// normalizeStreamWindow maps the flag's "0 = cumulative" convention onto
// the Config convention (0 = library default, negative = cumulative).
func normalizeStreamWindow(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

// splitPeers parses a comma-separated list flag (-peers, -standing-rules),
// ignoring blanks.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
