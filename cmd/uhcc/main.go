// Command uhcc is the OpenUH-style compiler driver: it parses a program in
// the UH source language, runs the optimization pipeline for the requested
// level, inserts instrumentation (with selective-instrumentation scoring),
// and optionally executes the program on the simulated Altix, storing the
// resulting TAU-style profile in a repository — the left half of the Fig. 3
// tool-integration pipeline.
//
// Usage:
//
//	uhcc [-O level] [-dump] [-report] [-run] [-threads N] [-nodes N]
//	     [-repo DIR] [-app NAME] [-experiment NAME] [-trial NAME] file.uh
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"perfknow/internal/machine"
	"perfknow/internal/openuh"
	"perfknow/internal/perfdmf"
	"perfknow/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable arguments and streams, for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uhcc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		optLevel   = fs.String("O", "O2", "optimization level: O0..O3")
		dump       = fs.Bool("dump", false, "dump the (instrumented) IR")
		report     = fs.Bool("report", false, "print the selective-instrumentation scoring report")
		execute    = fs.Bool("run", false, "execute the program on the simulated machine")
		threads    = fs.Int("threads", 4, "threads for execution")
		nodes      = fs.Int("nodes", 8, "machine nodes (2 CPUs each)")
		repoDir    = fs.String("repo", "", "store the run's profile in this repository")
		app        = fs.String("app", "", "application name for the stored trial (default: program name)")
		experiment = fs.String("experiment", "uhcc", "experiment name for the stored trial")
		trialName  = fs.String("trial", "", "trial name (default: <threads>_<level>)")
		loops      = fs.Bool("instrument-loops", true, "instrument loops")
		procs      = fs.Bool("instrument-procedures", true, "instrument procedures")
		callsites  = fs.Bool("instrument-callsites", false, "instrument callsites")
		selective  = fs.Bool("selective", true, "apply selective-instrumentation scoring")
		feedback   = fs.String("feedback", "", "trial JSON from a previous run: retune schedules, inlining and cost models before compiling")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "uhcc: exactly one source file expected")
		fs.Usage()
		return 2
	}

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	prog, err := openuh.ParseSource(string(src))
	if err != nil {
		return fail(stderr, err)
	}
	level, err := openuh.ParseOptLevel(*optLevel)
	if err != nil {
		return fail(stderr, err)
	}

	inst := openuh.DefaultInstrumentation()
	inst.Loops = *loops
	inst.Procedures = *procs
	inst.Callsites = *callsites
	inst.Selective = *selective

	// Feedback-directed recompilation: fold a previous run's profile back
	// into the schedules, the inliner, and the cost models (Fig. 3's loop).
	cm := openuh.DefaultCostModel()
	if *feedback != "" {
		trial, err := perfdmf.ReadTrialFile(*feedback)
		if err != nil {
			return fail(stderr, err)
		}
		if err := cm.ApplyFeedback(trial); err != nil {
			fmt.Fprintf(stdout, "uhcc: feedback: cost model not updated: %v\n", err)
		}
		for _, c := range openuh.TuneParallelLoops(prog, trial, &cm, 0) {
			fmt.Fprintf(stdout, "uhcc: feedback: loop %s schedule %s -> %s (imbalance %.2f)\n",
				c.Loop, c.Old, c.New, c.Ratio)
		}
		if n := openuh.TuneInlining(prog, trial, 1000, 5000); n > 0 {
			fmt.Fprintf(stdout, "uhcc: feedback: inlined %d hot call site(s)\n", n)
		}
	}

	ex, scores, err := openuh.Compile(prog, level, inst, &cm)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "uhcc: compiled %s at %s (%d passes: %s)\n",
		prog.Name, level, len(ex.CG.Applied), strings.Join(ex.CG.Applied, ", "))

	if *report {
		fmt.Fprint(stdout, openuh.SummarizeScores(scores))
	}
	if *dump {
		fmt.Fprint(stdout, prog.Dump())
	}
	if !*execute {
		return 0
	}

	m := machine.New(machine.Altix(*nodes, 2))
	eng := sim.NewEngine(m, sim.Options{Threads: *threads, CallpathDepth: 3})
	appName := *app
	if appName == "" {
		appName = prog.Name
	}
	tn := *trialName
	if tn == "" {
		tn = fmt.Sprintf("%d_%s", *threads, level)
	}
	trial, err := ex.Run(eng, appName, *experiment, tn)
	if err != nil {
		return fail(stderr, err)
	}
	if main := trial.MainEvent(perfdmf.TimeMetric); main != nil {
		fmt.Fprintf(stdout, "uhcc: ran %s on %d threads: %s = %.3f ms\n",
			prog.Name, *threads, main.Name, perfdmf.Mean(main.Inclusive[perfdmf.TimeMetric])/1e3)
	}
	if *repoDir != "" {
		repo, err := perfdmf.OpenRepository(*repoDir)
		if err != nil {
			return fail(stderr, err)
		}
		if err := repo.Save(trial); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "uhcc: stored trial %s/%s/%s under %s\n",
			appName, *experiment, tn, filepath.Clean(*repoDir))
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "uhcc:", err)
	return 1
}
