package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perfknow/internal/perfdmf"
)

func perfdmfReadTrial(path string) (*perfdmf.Trial, error) { return perfdmf.ReadTrialFile(path) }

func jsonMarshal(t *perfdmf.Trial) ([]byte, error) { return json.MarshalIndent(t, "", " ") }

const testSource = `
program tdriver
proc main() {
    loop steps 5 {
        call body
    }
}
proc body() {
    parallel loop rows 32 schedule(dynamic,1) {
        compute fp=1000 int=300 loads=400 stores=100 dep=0.3 \
                region=g off=0 len=1048576 reuse=8 firsttouch
    }
}
`

func writeSource(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.uh")
	if err := os.WriteFile(path, []byte(testSource), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompileOnly(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-O", "O1", writeSource(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "compiled tdriver at -O1") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestDumpAndReport(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-dump", "-report", writeSource(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "parallel loop rows") {
		t.Fatalf("dump missing: %s", out.String())
	}
	if !strings.Contains(out.String(), "instrumented") {
		t.Fatalf("report missing: %s", out.String())
	}
}

func TestRunAndStore(t *testing.T) {
	repoDir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{"-run", "-threads", "4", "-repo", repoDir, writeSource(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "ran tdriver on 4 threads") {
		t.Fatalf("run line missing: %s", out.String())
	}
	if _, err := os.Stat(filepath.Join(repoDir, "tdriver", "uhcc", "4_-O2.json")); err != nil {
		t.Fatalf("trial not stored: %v", err)
	}
}

const imbalancedSource = `
program fb
proc main() {
    parallel loop rows 64 schedule(static) {
        compute fp=1000 int=200 dep=0.2
    }
}
`

func TestFeedbackFlag(t *testing.T) {
	srcPath := filepath.Join(t.TempDir(), "fb.uh")
	if err := os.WriteFile(srcPath, []byte(imbalancedSource), 0o644); err != nil {
		t.Fatal(err)
	}
	// First run: static schedule, stored in a repo.
	repoDir := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "-threads", "4", "-repo", repoDir, srcPath}, &out, &errb); code != 0 {
		t.Fatalf("first run: %s", errb.String())
	}
	trialPath := filepath.Join(repoDir, "fb", "uhcc", "4_-O2.json")
	if _, err := os.Stat(trialPath); err != nil {
		t.Fatal(err)
	}
	// Doctor the stored trial so the loop looks imbalanced (the constant
	// per-iteration kernel is balanced by construction).
	doctorTrial(t, trialPath)

	// Second run with -feedback: the loop schedule must be retuned.
	out.Reset()
	if code := run([]string{"-feedback", trialPath, "-dump", srcPath}, &out, &errb); code != 0 {
		t.Fatalf("feedback run: %s", errb.String())
	}
	if !strings.Contains(out.String(), "schedule static -> dynamic,") {
		t.Fatalf("no schedule retune reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "schedule=dynamic,") {
		t.Fatalf("dump does not show the rewritten schedule:\n%s", out.String())
	}
	// Bad feedback file errors out.
	if code := run([]string{"-feedback", "/no/such.json", srcPath}, &out, &errb); code != 1 {
		t.Fatal("missing feedback file accepted")
	}
}

// doctorTrial rewrites the per-thread times of event "rows" to be strongly
// imbalanced.
func doctorTrial(t *testing.T, path string) {
	t.Helper()
	tr, err := perfdmfReadTrial(path)
	if err != nil {
		t.Fatal(err)
	}
	e := tr.Event("rows")
	if e == nil {
		t.Fatal("rows event missing from stored trial")
	}
	for th := 0; th < tr.Threads; th++ {
		f := float64(th + 1)
		e.Inclusive["TIME"][th] = 1000 * f
		e.Exclusive["TIME"][th] = 1000 * f
		e.Inclusive["CPU_CYCLES"][th] = 1.5e6 * f
		e.Exclusive["CPU_CYCLES"][th] = 1.5e6 * f
	}
	data, err := jsonMarshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                                    // no source file
		{"-O", "O9", writeSource(t)},          // bad level
		{filepath.Join(t.TempDir(), "no.uh")}, // missing file
	}
	for i, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("case %d: exit 0 for %v", i, args)
		}
	}
	// Malformed source.
	bad := filepath.Join(t.TempDir(), "bad.uh")
	if err := os.WriteFile(bad, []byte("not a program"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Fatalf("malformed source: exit %d", code)
	}
}
