package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perfknow/internal/dmfclient"
	"perfknow/internal/dmfserver"
	"perfknow/internal/dmfwire"
	"perfknow/internal/perfdmf"
)

// seedRepo writes a repository with one trial exercising the stall metrics.
func seedRepo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	repo, err := perfdmf.OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := perfdmf.NewTrial("app", "exp", "t1", 2)
	tr.AddMetric(perfdmf.TimeMetric)
	tr.AddMetric("BACK_END_BUBBLE_ALL")
	tr.AddMetric("CPU_CYCLES")
	main := tr.EnsureEvent("main")
	hot := tr.EnsureEvent("hot")
	for th := 0; th < 2; th++ {
		main.SetValue(perfdmf.TimeMetric, th, 1000, 100)
		main.SetValue("BACK_END_BUBBLE_ALL", th, 100, 10)
		main.SetValue("CPU_CYCLES", th, 1500000, 150000)
		hot.SetValue(perfdmf.TimeMetric, th, 800, 800)
		hot.SetValue("BACK_END_BUBBLE_ALL", th, 700, 700)
		hot.SetValue("CPU_CYCLES", th, 1000, 1000)
	}
	if err := repo.Save(tr); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestWriteAssetsFlag(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-write-assets", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit: %s", errb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "rules", "OpenUHRules.prl")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "scripts", "stalls_per_cycle.pes")); err != nil {
		t.Fatal(err)
	}
}

func TestListFlag(t *testing.T) {
	repo := seedRepo(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-repo", repo, "-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit: %s", errb.String())
	}
	for _, want := range []string{"app", "exp", "t1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("listing missing %q: %s", want, out.String())
		}
	}
}

func TestRunScriptEndToEnd(t *testing.T) {
	repo := seedRepo(t)
	assets := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-write-assets", assets}, &out, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	out.Reset()
	code := run([]string{
		"-repo", repo,
		"-rules", filepath.Join(assets, "rules"),
		"-script", filepath.Join(assets, "scripts", "stalls_per_cycle.pes"),
		"app", "exp", "t1",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "hot") {
		t.Fatalf("diagnosis missing: %s", out.String())
	}
	if !strings.Contains(out.String(), "recommendation") {
		t.Fatalf("recommendations missing: %s", out.String())
	}
}

func TestScriptRequired(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-repo", t.TempDir()}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestMissingScript(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-repo", t.TempDir(), "-script", "/does/not/exist.pes"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

// startServer boots a perfdmfd service over an httptest server and seeds
// it with the stall-metrics trial, returning the base URL.
func startServer(t *testing.T) string {
	t.Helper()
	repo, err := perfdmf.OpenRepository(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dmfserver.New(dmfserver.Config{
		Repo:   repo,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	c, err := dmfclient.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	tr := perfdmf.NewTrial("app", "exp", "t1", 2)
	tr.AddMetric(perfdmf.TimeMetric)
	tr.AddMetric("BACK_END_BUBBLE_ALL")
	tr.AddMetric("CPU_CYCLES")
	main := tr.EnsureEvent("main")
	hot := tr.EnsureEvent("hot")
	for th := 0; th < 2; th++ {
		main.SetValue(perfdmf.TimeMetric, th, 1000, 100)
		main.SetValue("BACK_END_BUBBLE_ALL", th, 100, 10)
		main.SetValue("CPU_CYCLES", th, 1500000, 150000)
		hot.SetValue(perfdmf.TimeMetric, th, 800, 800)
		hot.SetValue("BACK_END_BUBBLE_ALL", th, 700, 700)
		hot.SetValue("CPU_CYCLES", th, 1000, 1000)
	}
	if err := c.Save(tr); err != nil {
		t.Fatal(err)
	}
	return ts.URL
}

func TestListAgainstServer(t *testing.T) {
	url := startServer(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-server", url, "-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit: %s", errb.String())
	}
	for _, want := range []string{"app", "exp", "t1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("listing missing %q: %s", want, out.String())
		}
	}
}

// The same script must produce the same diagnosis whether the repository
// is a local directory or a remote perfdmfd service.
func TestRunScriptAgainstServer(t *testing.T) {
	url := startServer(t)
	assets := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-write-assets", assets}, &out, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	out.Reset()
	code := run([]string{
		"-server", url,
		"-rules", filepath.Join(assets, "rules"),
		"-script", filepath.Join(assets, "scripts", "stalls_per_cycle.pes"),
		"app", "exp", "t1",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "hot") || !strings.Contains(out.String(), "recommendation") {
		t.Fatalf("remote-script diagnosis incomplete: %s", out.String())
	}

	// Byte-identical to the local-repo run of the same script.
	localRepo := seedRepo(t)
	var localOut bytes.Buffer
	code = run([]string{
		"-repo", localRepo,
		"-rules", filepath.Join(assets, "rules"),
		"-script", filepath.Join(assets, "scripts", "stalls_per_cycle.pes"),
		"app", "exp", "t1",
	}, &localOut, &errb)
	if code != 0 {
		t.Fatalf("local exit %d: %s", code, errb.String())
	}
	if out.String() != localOut.String() {
		t.Fatalf("remote and local runs diverge:\nremote: %q\nlocal:  %q", out.String(), localOut.String())
	}
}

// TestTraceAgainstServer is the distributed-tracing acceptance test for
// the CLI: one -server -trace run must produce a single connected span
// tree containing client request spans, server handler spans, script
// statement spans and repository I/O spans.
func TestTraceAgainstServer(t *testing.T) {
	url := startServer(t)
	assets := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-write-assets", assets}, &out, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	out.Reset()
	tracePath := filepath.Join(t.TempDir(), "out.json")
	code := run([]string{
		"-server", url,
		"-rules", filepath.Join(assets, "rules"),
		"-script", filepath.Join(assets, "scripts", "stalls_per_cycle.pes"),
		"-trace", tracePath,
		"app", "exp", "t1",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var tf dmfwire.TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(tf.Traces) != 1 {
		t.Fatalf("trace file holds %d traces, want exactly 1", len(tf.Traces))
	}
	tr := tf.Traces[0]

	// One connected tree: exactly one root, every other span's parent
	// present in the same trace.
	ids := make(map[string]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		ids[sp.SpanID] = true
	}
	roots := 0
	for _, sp := range tr.Spans {
		if sp.ParentID == "" {
			roots++
			continue
		}
		if !ids[sp.ParentID] {
			t.Fatalf("span %q (%s) parent %s missing — tree is disconnected", sp.Name, sp.SpanID, sp.ParentID)
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d roots, want 1", roots)
	}

	// All four layers are present, across both services.
	want := map[string]bool{
		"perfexplorer.run":  false, // CLI root
		"dmfclient GET":     false, // client request spans
		"dmfserver GET":     false, // server handler spans
		"script.stmt":       false, // script statement spans
		"perfdmf.get_trial": false, // repository I/O spans
	}
	services := map[string]bool{}
	for _, sp := range tr.Spans {
		services[sp.Service] = true
		for prefix := range want {
			if strings.HasPrefix(sp.Name, prefix) {
				want[prefix] = true
			}
		}
	}
	for prefix, seen := range want {
		if !seen {
			t.Fatalf("trace is missing %q spans; got %d spans", prefix, len(tr.Spans))
		}
	}
	if !services["perfexplorer"] || !services["perfdmfd"] {
		t.Fatalf("trace spans only services %v, want both perfexplorer and perfdmfd", services)
	}
}

// TestTraceLocalRun: -trace also works without a server — the local run's
// statement, analysis and rule spans form one tree.
func TestTraceLocalRun(t *testing.T) {
	repo := seedRepo(t)
	assets := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-write-assets", assets}, &out, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	tracePath := filepath.Join(t.TempDir(), "out.json")
	code := run([]string{
		"-repo", repo,
		"-rules", filepath.Join(assets, "rules"),
		"-script", filepath.Join(assets, "scripts", "stalls_per_cycle.pes"),
		"-trace", tracePath,
		"app", "exp", "t1",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var tf dmfwire.TraceFile
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	if len(tf.Traces) != 1 || len(tf.Traces[0].Spans) < 3 {
		t.Fatalf("local trace = %+v", tf)
	}
	seenStmt := false
	for _, sp := range tf.Traces[0].Spans {
		if strings.HasPrefix(sp.Name, "script.stmt") {
			seenStmt = true
		}
	}
	if !seenStmt {
		t.Fatal("local trace missing script statement spans")
	}
}

func TestServerUnreachable(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-server", "http://127.0.0.1:1", "-list"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
