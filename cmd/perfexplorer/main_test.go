package main

import (
	"bytes"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perfknow/internal/dmfclient"
	"perfknow/internal/dmfserver"
	"perfknow/internal/perfdmf"
)

// seedRepo writes a repository with one trial exercising the stall metrics.
func seedRepo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	repo, err := perfdmf.OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := perfdmf.NewTrial("app", "exp", "t1", 2)
	tr.AddMetric(perfdmf.TimeMetric)
	tr.AddMetric("BACK_END_BUBBLE_ALL")
	tr.AddMetric("CPU_CYCLES")
	main := tr.EnsureEvent("main")
	hot := tr.EnsureEvent("hot")
	for th := 0; th < 2; th++ {
		main.SetValue(perfdmf.TimeMetric, th, 1000, 100)
		main.SetValue("BACK_END_BUBBLE_ALL", th, 100, 10)
		main.SetValue("CPU_CYCLES", th, 1500000, 150000)
		hot.SetValue(perfdmf.TimeMetric, th, 800, 800)
		hot.SetValue("BACK_END_BUBBLE_ALL", th, 700, 700)
		hot.SetValue("CPU_CYCLES", th, 1000, 1000)
	}
	if err := repo.Save(tr); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestWriteAssetsFlag(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-write-assets", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit: %s", errb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "rules", "OpenUHRules.prl")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "scripts", "stalls_per_cycle.pes")); err != nil {
		t.Fatal(err)
	}
}

func TestListFlag(t *testing.T) {
	repo := seedRepo(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-repo", repo, "-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit: %s", errb.String())
	}
	for _, want := range []string{"app", "exp", "t1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("listing missing %q: %s", want, out.String())
		}
	}
}

func TestRunScriptEndToEnd(t *testing.T) {
	repo := seedRepo(t)
	assets := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-write-assets", assets}, &out, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	out.Reset()
	code := run([]string{
		"-repo", repo,
		"-rules", filepath.Join(assets, "rules"),
		"-script", filepath.Join(assets, "scripts", "stalls_per_cycle.pes"),
		"app", "exp", "t1",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "hot") {
		t.Fatalf("diagnosis missing: %s", out.String())
	}
	if !strings.Contains(out.String(), "recommendation") {
		t.Fatalf("recommendations missing: %s", out.String())
	}
}

func TestScriptRequired(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-repo", t.TempDir()}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestMissingScript(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-repo", t.TempDir(), "-script", "/does/not/exist.pes"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

// startServer boots a perfdmfd service over an httptest server and seeds
// it with the stall-metrics trial, returning the base URL.
func startServer(t *testing.T) string {
	t.Helper()
	repo, err := perfdmf.OpenRepository(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dmfserver.New(dmfserver.Config{
		Repo:   repo,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	c, err := dmfclient.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	tr := perfdmf.NewTrial("app", "exp", "t1", 2)
	tr.AddMetric(perfdmf.TimeMetric)
	tr.AddMetric("BACK_END_BUBBLE_ALL")
	tr.AddMetric("CPU_CYCLES")
	main := tr.EnsureEvent("main")
	hot := tr.EnsureEvent("hot")
	for th := 0; th < 2; th++ {
		main.SetValue(perfdmf.TimeMetric, th, 1000, 100)
		main.SetValue("BACK_END_BUBBLE_ALL", th, 100, 10)
		main.SetValue("CPU_CYCLES", th, 1500000, 150000)
		hot.SetValue(perfdmf.TimeMetric, th, 800, 800)
		hot.SetValue("BACK_END_BUBBLE_ALL", th, 700, 700)
		hot.SetValue("CPU_CYCLES", th, 1000, 1000)
	}
	if err := c.Save(tr); err != nil {
		t.Fatal(err)
	}
	return ts.URL
}

func TestListAgainstServer(t *testing.T) {
	url := startServer(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-server", url, "-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit: %s", errb.String())
	}
	for _, want := range []string{"app", "exp", "t1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("listing missing %q: %s", want, out.String())
		}
	}
}

// The same script must produce the same diagnosis whether the repository
// is a local directory or a remote perfdmfd service.
func TestRunScriptAgainstServer(t *testing.T) {
	url := startServer(t)
	assets := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-write-assets", assets}, &out, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	out.Reset()
	code := run([]string{
		"-server", url,
		"-rules", filepath.Join(assets, "rules"),
		"-script", filepath.Join(assets, "scripts", "stalls_per_cycle.pes"),
		"app", "exp", "t1",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "hot") || !strings.Contains(out.String(), "recommendation") {
		t.Fatalf("remote-script diagnosis incomplete: %s", out.String())
	}

	// Byte-identical to the local-repo run of the same script.
	localRepo := seedRepo(t)
	var localOut bytes.Buffer
	code = run([]string{
		"-repo", localRepo,
		"-rules", filepath.Join(assets, "rules"),
		"-script", filepath.Join(assets, "scripts", "stalls_per_cycle.pes"),
		"app", "exp", "t1",
	}, &localOut, &errb)
	if code != 0 {
		t.Fatalf("local exit %d: %s", code, errb.String())
	}
	if out.String() != localOut.String() {
		t.Fatalf("remote and local runs diverge:\nremote: %q\nlocal:  %q", out.String(), localOut.String())
	}
}

func TestServerUnreachable(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-server", "http://127.0.0.1:1", "-list"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
