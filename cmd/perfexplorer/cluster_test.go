package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"perfknow/internal/dmfserver"
	"perfknow/internal/dmfwire"
	"perfknow/internal/perfdmf"
)

// handlerHolder lets an httptest server start before its real handler
// exists: cluster peers must know every peer's URL, and the URLs are only
// assigned when the test servers come up.
type handlerHolder struct{ h atomic.Value }

func (hh *handlerHolder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	hh.h.Load().(http.Handler).ServeHTTP(w, r)
}

// startCluster boots n perfdmfd services that all serve the same ring
// descriptor over their httptest URLs, returning the comma-joined peer
// list for the -cluster flag.
func startCluster(t *testing.T, n int) string {
	t.Helper()
	holders := make([]*handlerHolder, n)
	urls := make([]string, n)
	for i := range holders {
		holders[i] = &handlerHolder{}
		ts := httptest.NewServer(holders[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	ring := dmfwire.Ring{Epoch: 1, Replicas: 2, VNodes: 64, Seed: 0, Peers: urls}
	for i := range holders {
		repo, err := perfdmf.OpenRepository(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		r := ring
		srv, err := dmfserver.New(dmfserver.Config{
			Repo:   repo,
			Ring:   &r,
			Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		holders[i].h.Store(srv.Handler())
	}
	return strings.Join(urls, ",")
}

// writeTrialFile marshals the stall-metrics trial to a JSON file for
// -upload.
func writeTrialFile(t *testing.T, app, exp, name string) string {
	t.Helper()
	tr := perfdmf.NewTrial(app, exp, name, 2)
	tr.AddMetric(perfdmf.TimeMetric)
	tr.AddMetric("BACK_END_BUBBLE_ALL")
	tr.AddMetric("CPU_CYCLES")
	main := tr.EnsureEvent("main")
	hot := tr.EnsureEvent("hot")
	for th := 0; th < 2; th++ {
		main.SetValue(perfdmf.TimeMetric, th, 1000, 100)
		main.SetValue("BACK_END_BUBBLE_ALL", th, 100, 10)
		main.SetValue("CPU_CYCLES", th, 1500000, 150000)
		hot.SetValue(perfdmf.TimeMetric, th, 800, 800)
		hot.SetValue("BACK_END_BUBBLE_ALL", th, 700, 700)
		hot.SetValue("CPU_CYCLES", th, 1000, 1000)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestClusterUploadGetListRebalance drives the operational loop end to
// end: upload through the routing layer, read it back, see it in the
// union listing, and converge cleanly under -rebalance.
func TestClusterUploadGetListRebalance(t *testing.T) {
	peers := startCluster(t, 3)
	trialFile := writeTrialFile(t, "app", "exp", "t1")

	var out, errb bytes.Buffer
	if code := run([]string{"-cluster", peers, "-upload", trialFile}, &out, &errb); code != 0 {
		t.Fatalf("upload exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "uploaded app/exp/t1") {
		t.Fatalf("upload output: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"-cluster", peers, "-get", "app/exp/t1"}, &out, &errb); code != 0 {
		t.Fatalf("get exit %d: %s", code, errb.String())
	}
	var got perfdmf.Trial
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("-get output is not a trial: %v\n%s", err, out.String())
	}
	if got.Name != "t1" || got.Threads != 2 {
		t.Fatalf("-get returned name=%q threads=%d", got.Name, got.Threads)
	}

	out.Reset()
	if code := run([]string{"-cluster", peers, "-list"}, &out, &errb); code != 0 {
		t.Fatalf("list exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"app", "exp", "t1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("cluster listing missing %q: %s", want, out.String())
		}
	}

	out.Reset()
	if code := run([]string{"-cluster", peers, "-rebalance"}, &out, &errb); code != 0 {
		t.Fatalf("rebalance exit %d: %s\n%s", code, errb.String(), out.String())
	}
	var rep dmfwire.RepairReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-rebalance output is not a report: %v\n%s", err, out.String())
	}
	if rep.PeersScanned != 3 || rep.Trials != 1 || !rep.Clean() {
		t.Fatalf("rebalance report: %+v", rep)
	}
	// VerifyRing ran against real daemons: all three confirmed.
	if !strings.Contains(errb.String(), "3 peer(s) confirmed the ring") {
		t.Fatalf("ring verification note missing: %s", errb.String())
	}
}

// TestClusterScriptMatchesLocal: the same diagnosis script, the same
// trial — routed through a 3-node cluster and run against a local
// directory — must print identical analysis.
func TestClusterScriptMatchesLocal(t *testing.T) {
	peers := startCluster(t, 3)
	trialFile := writeTrialFile(t, "app", "exp", "t1")
	assets := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-write-assets", assets}, &out, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	if code := run([]string{"-cluster", peers, "-upload", trialFile}, &out, &errb); code != 0 {
		t.Fatalf("upload: %s", errb.String())
	}
	script := filepath.Join(assets, "scripts", "stalls_per_cycle.pes")
	rules := filepath.Join(assets, "rules")

	var clusterOut bytes.Buffer
	if code := run([]string{"-cluster", peers, "-rules", rules, "-script", script,
		"app", "exp", "t1"}, &clusterOut, &errb); code != 0 {
		t.Fatalf("cluster run exit %d: %s", code, errb.String())
	}

	var localOut bytes.Buffer
	if code := run([]string{"-repo", seedRepo(t), "-rules", rules, "-script", script,
		"app", "exp", "t1"}, &localOut, &errb); code != 0 {
		t.Fatalf("local run exit %d: %s", code, errb.String())
	}
	if clusterOut.String() != localOut.String() {
		t.Fatalf("cluster diagnosis diverged from local:\n--- cluster ---\n%s\n--- local ---\n%s",
			clusterOut.String(), localOut.String())
	}
}

func TestRebalanceRequiresCluster(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-repo", t.TempDir(), "-rebalance"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2: %s", code, errb.String())
	}
}

// TestClusterEpochMismatchRefused: a client configured with the wrong
// epoch must refuse to route rather than place data inconsistently.
func TestClusterEpochMismatchRefused(t *testing.T) {
	peers := startCluster(t, 3)
	var out, errb bytes.Buffer
	if code := run([]string{"-cluster", peers, "-ring-epoch", "9", "-list"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "disagrees on the ring") {
		t.Fatalf("stderr missing the mismatch explanation: %s", errb.String())
	}
}
