// Command perfexplorer runs PerfExplorer analysis scripts and inference
// rules against a profile repository — the scripted, automated analysis
// path of Fig. 3.
//
// Usage:
//
//	perfexplorer -repo DIR -script FILE [-rules DIR] [-trace FILE] [arg ...]
//	perfexplorer -server URL -script FILE [-rules DIR] [-trace FILE] [arg ...]
//	perfexplorer -cluster URL1,URL2,... -script FILE [flags] [arg ...]
//	perfexplorer -repo DIR -list
//	perfexplorer -cluster URL1,URL2,... -rebalance
//	perfexplorer -cluster URL1,URL2,... -upload FILE
//	perfexplorer -cluster URL1,URL2,... -get APP/EXP/TRIAL
//	perfexplorer -server URL -stream FILE [-stream-chunks N] [-stream-window N] [-stream-rules R1,R2]
//	perfexplorer -server URL -watch STREAM_ID
//	perfexplorer -server URL -streams
//	perfexplorer -write-assets DIR
//
// Script arguments (usually application, experiment and trial names) are
// visible to the script as the `args` list. The bundled analysis scripts
// live under assets/scripts and the rule files under assets/rules.
//
// With -server URL the script runs against a remote perfdmfd profile
// service instead of a local directory: Utilities.getTrial, listings and
// saveTrial all go over the wire, so existing scripts work against a
// shared networked repository unchanged. -repo is ignored when -server is
// set.
//
// With -cluster the script runs against a sharded, replicated perfdmfd
// cluster: the peer list plus -replicas/-ring-epoch/-vnodes/-ring-seed
// (which must match the daemons' flags) compile into the same placement
// ring the cluster was started with, and every read, write and listing is
// routed, replicated and unioned client-side — scripts are unchanged.
// -rebalance runs one anti-entropy repair pass and prints the repair
// report as JSON (exit 0 if the cluster converged cleanly); -upload sends
// a trial JSON file through the routing layer; -get fetches one trial and
// prints it as JSON.
//
// With -stream the trial JSON file is uploaded through the streaming API —
// opened, appended in -stream-chunks-event chunks, sealed — instead of in
// one request; standing diagnoses registered with -stream-rules fire
// alerts as the chunks arrive. -watch subscribes to a stream's alerts over
// SSE and prints them until the stream seals (watching a recently sealed
// stream replays its full alert history). -streams lists the server's
// stream table. See docs/STREAMING.md.
//
// With -trace FILE the run is traced: script statements, analysis
// operations, rule firings and repository I/O each record a span, and
// against -server the client's per-attempt request spans propagate their
// context via Traceparent headers so the server-side spans are fetched
// back and merged into one connected tree. The file holds a
// dmfwire.TraceFile (JSON).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"perfknow/internal/cluster"
	"perfknow/internal/core"
	"perfknow/internal/diagnosis"
	"perfknow/internal/dmfclient"
	"perfknow/internal/dmfwire"
	"perfknow/internal/obs"
	"perfknow/internal/parallel"
	"perfknow/internal/perfdmf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable arguments and streams, for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfexplorer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		repoDir     = fs.String("repo", "perfdata", "profile repository directory")
		serverURL   = fs.String("server", "", "remote perfdmfd URL (e.g. http://localhost:7360); overrides -repo")
		scriptPath  = fs.String("script", "", "analysis script (.pes) to run")
		rulesDir    = fs.String("rules", "assets/rules", "directory holding .prl rule files")
		list        = fs.Bool("list", false, "list repository contents and exit")
		writeAssets = fs.String("write-assets", "", "write the bundled rules and scripts under this directory and exit")
		tracePath   = fs.String("trace", "", "trace the run and write the span tree (incl. server-side spans with -server) as JSON to this file")
		jobs        = fs.Int("j", 0, "worker goroutines for parallel analysis (0 = GOMAXPROCS, 1 = sequential)")
		retries     = fs.Int("retries", 0, "max attempts per remote request, incl. the first (0 = client default, 1 = no retries)")
		clusterFlag = fs.String("cluster", "", "comma-separated perfdmfd peer URLs; route reads/writes across the cluster (overrides -server and -repo)")
		replicas    = fs.Int("replicas", 2, "cluster replication factor R (with -cluster; must match the daemons)")
		ringEpoch   = fs.Uint64("ring-epoch", 1, "cluster membership epoch (with -cluster; must match the daemons)")
		vnodes      = fs.Int("vnodes", 64, "virtual nodes per peer on the placement ring (with -cluster; must match the daemons)")
		ringSeed    = fs.Uint64("ring-seed", 0, "placement hash seed (with -cluster; must match the daemons)")
		ringVersion = fs.Int("ring-version", 1, "placement hash version: 1 = legacy, 2 = mixed (with -cluster; must match the daemons)")
		announce    = fs.String("announce", "", "announce the ring built from -cluster/-ring-* flags to this daemon URL and exit; gossip spreads it to every member")
		rebalance   = fs.Bool("rebalance", false, "run one anti-entropy repair pass over the cluster, print the report as JSON and exit (0 = converged cleanly); normally unnecessary — gossiping daemons repair themselves")
		uploadPath  = fs.String("upload", "", "upload this trial JSON file through the store and exit")
		getCoord    = fs.String("get", "", "fetch one trial (APP/EXP/TRIAL) and print it as JSON")
		watchID     = fs.String("watch", "", "subscribe to a stream's standing-diagnosis alerts (stream id; with -server) and print them until the stream seals")
		streamFile  = fs.String("stream", "", "stream-upload this trial JSON file in chunks and seal it (with -server)")
		streamChunk = fs.Int("stream-chunks", 8, "events per chunk for -stream")
		streamWin   = fs.Int("stream-window", 0, "sliding-window size in chunks for -stream standing analysis (0 = server default, negative = cumulative)")
		streamRules = fs.String("stream-rules", "", "comma-separated .prl rule names registered as standing diagnoses for -stream (empty = server default)")
		streamsList = fs.Bool("streams", false, "list the server's live and recently sealed streams (with -server)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	parallel.SetDefaultWorkers(*jobs)

	if *writeAssets != "" {
		if err := diagnosis.WriteAssets(*writeAssets); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "wrote knowledge base under %s/rules and %s/scripts\n", *writeAssets, *writeAssets)
		return 0
	}

	// -announce: post a new ring descriptor to ONE member and let gossip
	// spread it — the online way to grow, shrink or re-version a cluster.
	// The descriptor is built from the same flags a daemon would use; the
	// epoch must be strictly newer than what the cluster holds.
	if *announce != "" {
		if *clusterFlag == "" {
			fmt.Fprintln(stderr, "perfexplorer: -announce requires -cluster (the new peer list)")
			return 2
		}
		desc := dmfwire.Ring{
			Epoch:    *ringEpoch,
			Replicas: *replicas,
			VNodes:   *vnodes,
			Seed:     *ringSeed,
			Version:  *ringVersion,
			Peers:    splitPeers(*clusterFlag),
		}.Canonical()
		if err := desc.Validate(); err != nil {
			return fail(stderr, err)
		}
		c, err := dmfclient.New(*announce)
		if err != nil {
			return fail(stderr, err)
		}
		adopted, err := c.AnnounceRing(context.Background(), desc)
		if err != nil {
			return fail(stderr, err)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dmfwire.AnnounceResponse{Adopted: adopted, Epoch: desc.Epoch})
		if !adopted {
			fmt.Fprintf(stderr, "perfexplorer: %s did not adopt epoch %d (it already holds that epoch or newer)\n", *announce, desc.Epoch)
			return 1
		}
		return 0
	}

	// One tracer serves both jobs: the -trace span tree, and the event
	// channel on which the client publishes listing errors its Store
	// signatures had to swallow.
	var tracer *obs.Tracer
	if *tracePath != "" || *serverURL != "" || *clusterFlag != "" {
		tracer = obs.NewTracer()
		tracer.Service = "perfexplorer"
	}

	var store perfdmf.Store
	var client *dmfclient.Client
	var sharded *cluster.ShardedStore
	switch {
	case *clusterFlag != "":
		desc := dmfwire.Ring{
			Epoch:    *ringEpoch,
			Replicas: *replicas,
			VNodes:   *vnodes,
			Seed:     *ringSeed,
			Version:  *ringVersion,
			Peers:    splitPeers(*clusterFlag),
		}
		opts := []dmfclient.Option{dmfclient.WithTracer(tracer)}
		if *retries > 0 {
			opts = append(opts, dmfclient.WithRetryPolicy(dmfclient.RetryPolicy{MaxAttempts: *retries}))
		}
		var err error
		sharded, err = cluster.Dial(desc, opts, cluster.WithTracer(tracer))
		if err != nil {
			return fail(stderr, err)
		}
		// Cross-check the ring before routing. EnsureRing distinguishes
		// the two ways peers can disagree: a peer AHEAD of us means our
		// flags are stale after an epoch bump — fetch and adopt the newer
		// descriptor, then re-verify; true misconfiguration (different
		// placement at one epoch) stays a hard error, since two processes
		// would place keys differently.
		confirmed, err := sharded.EnsureRing(context.Background())
		if err != nil {
			return fail(stderr, err)
		}
		live := sharded.Ring().Descriptor()
		fmt.Fprintf(stderr, "perfexplorer: cluster of %d peer(s), replicas=%d, epoch=%d (%d peer(s) confirmed the ring)\n",
			len(live.Peers), live.Replicas, live.Epoch, confirmed)
		store = sharded
	case *serverURL != "":
		opts := []dmfclient.Option{dmfclient.WithTracer(tracer)}
		if *retries > 0 {
			opts = append(opts, dmfclient.WithRetryPolicy(dmfclient.RetryPolicy{MaxAttempts: *retries}))
		}
		var err error
		client, err = dmfclient.New(*serverURL, opts...)
		if err != nil {
			return fail(stderr, err)
		}
		if err := client.Health(); err != nil {
			return fail(stderr, err)
		}
		store = client
	default:
		repo, err := perfdmf.OpenRepository(*repoDir)
		if err != nil {
			return fail(stderr, err)
		}
		store = repo
	}

	if *rebalance {
		if sharded == nil {
			fmt.Fprintln(stderr, "perfexplorer: -rebalance requires -cluster")
			return 2
		}
		rep, err := sharded.Rebalance(context.Background())
		if err != nil {
			return fail(stderr, err)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return fail(stderr, err)
		}
		if !rep.Clean() {
			return 1
		}
		return 0
	}
	if *uploadPath != "" {
		return uploadTrial(store, *uploadPath, stdout, stderr)
	}
	if *getCoord != "" {
		return getTrial(store, *getCoord, stdout, stderr)
	}
	if *watchID != "" || *streamFile != "" || *streamsList {
		if client == nil {
			fmt.Fprintln(stderr, "perfexplorer: -watch, -stream and -streams require -server")
			return 2
		}
		switch {
		case *streamsList:
			return listStreams(client, stdout, stderr)
		case *streamFile != "":
			return streamTrial(client, *streamFile, *streamChunk, *streamWin, splitPeers(*streamRules), stdout, stderr)
		default:
			return watchStream(client, *watchID, stdout, stderr)
		}
	}

	if *list {
		// Remote listings use the error-returning List* variants: an
		// "empty" repository may really be an unreachable server, so fail
		// loudly rather than print nothing.
		if client != nil {
			return listRemote(client, stdout, stderr)
		}
		if sharded != nil {
			return listRemote(sharded, stdout, stderr)
		}
		for _, app := range store.Applications() {
			fmt.Fprintln(stdout, app)
			for _, exp := range store.Experiments(app) {
				fmt.Fprintf(stdout, "  %s\n", exp)
				for _, tr := range store.Trials(app, exp) {
					fmt.Fprintf(stdout, "    %s\n", tr)
				}
			}
		}
		return 0
	}

	if *scriptPath == "" {
		fmt.Fprintln(stderr, "perfexplorer: -script is required (or -list / -write-assets)")
		fs.Usage()
		return 2
	}

	// Mid-script listings go through the Store signatures and cannot
	// return transport errors; the client publishes those failures as
	// events, which we collect here to warn after the run.
	var (
		listErrMu sync.Mutex
		listErr   error
	)
	if tracer != nil {
		tracer.OnEvent(func(ev obs.Event) {
			if (ev.Name != "dmfclient.list_error" && ev.Name != "cluster.list_error") || ev.Err == nil {
				return
			}
			listErrMu.Lock()
			if listErr == nil {
				listErr = ev.Err
			}
			listErrMu.Unlock()
		})
	}

	s := core.NewSession(store)
	s.SetOutput(stdout)
	diagnosis.Install(s, *rulesDir)
	diagnosis.SetArgs(s, fs.Args())

	var root *obs.Span
	if *tracePath != "" {
		ctx := obs.ContextWithTracer(context.Background(), tracer)
		ctx, root = obs.StartSpan(ctx, "perfexplorer.run", "script", *scriptPath)
		s.SetContext(ctx)
	}
	scriptErr := s.RunScriptFile(*scriptPath)
	root.SetError(scriptErr)
	root.End()
	if *tracePath != "" {
		if err := writeTrace(tracer, root, client, *tracePath, stderr); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stderr, "perfexplorer: trace written to %s\n", *tracePath)
	}
	if scriptErr != nil {
		return fail(stderr, scriptErr)
	}
	// A listing that failed mid-script silently looked empty to the
	// script; tell the user the results may be based on missing data.
	listErrMu.Lock()
	warn := listErr
	listErrMu.Unlock()
	if warn != nil {
		fmt.Fprintf(stderr, "perfexplorer: warning: a remote listing failed during the run (results may be incomplete): %v\n", warn)
	}
	if res := s.LastResult(); res != nil && len(res.Recommendations) > 0 {
		fmt.Fprintf(stdout, "\n%d recommendation(s) produced.\n", len(res.Recommendations))
	}
	return 0
}

// lister is the error-returning listing surface shared by a single remote
// client and the cluster routing layer.
type lister interface {
	ListApplications() ([]string, error)
	ListExperiments(app string) ([]string, error)
	ListTrials(app, experiment string) ([]string, error)
}

// listRemote prints the remote repository tree, surfacing transport errors
// in-band instead of printing a misleading empty listing.
func listRemote(client lister, stdout, stderr io.Writer) int {
	apps, err := client.ListApplications()
	if err != nil {
		return fail(stderr, err)
	}
	for _, app := range apps {
		fmt.Fprintln(stdout, app)
		exps, err := client.ListExperiments(app)
		if err != nil {
			return fail(stderr, err)
		}
		for _, exp := range exps {
			fmt.Fprintf(stdout, "  %s\n", exp)
			trs, err := client.ListTrials(app, exp)
			if err != nil {
				return fail(stderr, err)
			}
			for _, tr := range trs {
				fmt.Fprintf(stdout, "    %s\n", tr)
			}
		}
	}
	return 0
}

// writeTrace assembles the run's trace — local spans plus, against a
// server, the server-side fragment fetched back by trace id — and writes
// it to path as a dmfwire.TraceFile.
func writeTrace(tracer *obs.Tracer, root *obs.Span, client *dmfclient.Client, path string, stderr io.Writer) error {
	id := root.TraceID()
	if client != nil {
		// The fetch itself is traced under its own fresh trace id (the run's
		// root already ended), so it cannot grow the tree it exports. The
		// server finalizes each request's spans just after writing its
		// response, so the final request's fragment may land a beat after
		// our last response arrived — retry a 404 briefly before concluding
		// the server saw no requests.
		var (
			remote obs.Trace
			err    error
		)
		for attempt := 0; attempt < 4; attempt++ {
			remote, err = client.TraceContext(context.Background(), id)
			if err == nil || !errors.Is(err, perfdmf.ErrNotFound) {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		switch {
		case err == nil:
			tracer.Merge(remote)
		case errors.Is(err, perfdmf.ErrNotFound):
			// No remote fragment: the script made no remote requests.
		default:
			fmt.Fprintf(stderr, "perfexplorer: warning: server-side spans unavailable (writing local spans only): %v\n", err)
		}
	}
	tr, ok := tracer.Trace(id)
	if !ok {
		return fmt.Errorf("perfexplorer: trace %s was not finalized", id)
	}
	data, err := json.MarshalIndent(dmfwire.TraceFile{Traces: []obs.Trace{tr}}, "", "  ")
	if err != nil {
		return fmt.Errorf("perfexplorer: encode trace: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("perfexplorer: write trace: %w", err)
	}
	return nil
}

// uploadTrial reads a trial JSON file, validates it, and saves it through
// the store — against -cluster that is a replicated, routed write.
func uploadTrial(store perfdmf.Store, path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(stderr, err)
	}
	var tr perfdmf.Trial
	if err := json.Unmarshal(data, &tr); err != nil {
		return fail(stderr, fmt.Errorf("parse %s: %w", path, err))
	}
	if err := tr.Validate(); err != nil {
		return fail(stderr, err)
	}
	if err := store.Save(&tr); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "uploaded %s/%s/%s\n", tr.App, tr.Experiment, tr.Name)
	return 0
}

// getTrial fetches one APP/EXP/TRIAL coordinate and prints the trial as
// JSON — against -cluster the read fans out over the replicas.
func getTrial(store perfdmf.Store, coord string, stdout, stderr io.Writer) int {
	parts := strings.SplitN(coord, "/", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return fail(stderr, fmt.Errorf("-get wants APP/EXP/TRIAL, got %q", coord))
	}
	tr, err := store.GetTrial(parts[0], parts[1], parts[2])
	if err != nil {
		return fail(stderr, err)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tr); err != nil {
		return fail(stderr, err)
	}
	return 0
}

// streamTrial pushes a trial JSON file through the streaming API: open a
// stream at the trial's coordinates, append the events in fixed-size
// chunks, seal. The sealed trial is byte-identical to what -upload of the
// same file would have stored; the difference is that standing diagnoses
// ran while the data arrived (the alert count is reported, and the alerts
// themselves replay to any -watch subscriber, even after the seal).
func streamTrial(client *dmfclient.Client, path string, chunkEvents, window int, ruleNames []string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(stderr, err)
	}
	var tr perfdmf.Trial
	if err := json.Unmarshal(data, &tr); err != nil {
		return fail(stderr, fmt.Errorf("parse %s: %w", path, err))
	}
	if err := tr.Validate(); err != nil {
		return fail(stderr, err)
	}
	if chunkEvents < 1 {
		chunkEvents = 1
	}
	var opts []dmfclient.StreamOption
	if window != 0 {
		opts = append(opts, dmfclient.WithStreamWindow(window))
	}
	if len(ruleNames) > 0 {
		opts = append(opts, dmfclient.WithStandingRules(ruleNames...))
	}
	ctx := context.Background()
	info, err := client.OpenStream(ctx, tr.App, tr.Experiment, tr.Name, tr.Threads, tr.Metrics, opts...)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "stream %s opened for %s/%s/%s\n", info.ID, tr.App, tr.Experiment, tr.Name)
	var seq int64
	var lastAck *dmfwire.AppendAck
	for start := 0; start < len(tr.Events); start += chunkEvents {
		end := start + chunkEvents
		if end > len(tr.Events) {
			end = len(tr.Events)
		}
		chunk := make([]dmfwire.ChunkEvent, 0, end-start)
		for _, ev := range tr.Events[start:end] {
			chunk = append(chunk, dmfwire.ChunkEvent{
				Name:      ev.Name,
				Groups:    ev.Groups,
				Calls:     ev.Calls,
				Inclusive: ev.Inclusive,
				Exclusive: ev.Exclusive,
			})
		}
		seq++
		ack, err := client.Append(ctx, info.ID, seq, chunk)
		if err != nil {
			return fail(stderr, err)
		}
		lastAck = ack
	}
	sum, err := client.Seal(ctx, info.ID)
	if err != nil {
		return fail(stderr, err)
	}
	alerts := int64(0)
	if lastAck != nil {
		alerts = lastAck.Alerts
	}
	fmt.Fprintf(stdout, "stream %s sealed: %d chunk(s), %d event(s), %d metric(s), %d alert(s)\n",
		info.ID, seq, sum.Events, sum.Metrics, alerts)
	return 0
}

// watchStream follows one stream's standing-diagnosis alerts until the
// stream seals (exit 0) or the subscription fails. Sealed streams are
// retained server-side for a while, so watching after the fact replays the
// full alert history.
func watchStream(client *dmfclient.Client, id string, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	final, err := client.WatchAlerts(ctx, id, func(a dmfwire.StreamAlert) {
		fmt.Fprintf(stdout, "alert %d (chunk %d): %s\n", a.ID, a.Seq, a.Rule)
		for _, line := range a.Output {
			fmt.Fprintf(stdout, "  %s\n", line)
		}
		for _, rec := range a.Recommendations {
			fmt.Fprintf(stdout, "  >> [%s] %s\n", rec.Category, rec.Text)
		}
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return 0 // user interrupt: a clean stop, not a failure
		}
		return fail(stderr, err)
	}
	if final != nil {
		fmt.Fprintf(stdout, "stream %s sealed after %d chunk(s): %d event(s), %d alert(s)\n",
			final.ID, final.LastSeq, final.Events, final.Alerts)
	} else {
		fmt.Fprintf(stdout, "stream %s ended without sealing\n", id)
	}
	return 0
}

// listStreams prints the server's stream table.
func listStreams(client *dmfclient.Client, stdout, stderr io.Writer) int {
	streams, err := client.Streams(context.Background())
	if err != nil {
		return fail(stderr, err)
	}
	for _, st := range streams {
		fmt.Fprintf(stdout, "%s\t%s/%s/%s\t%s\tchunks=%d events=%d alerts=%d\n",
			st.ID, st.App, st.Experiment, st.Trial, st.State, st.LastSeq, st.Events, st.Alerts)
	}
	return 0
}

// splitPeers parses the -cluster flag: comma-separated URLs, blanks
// ignored.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "perfexplorer:", err)
	return 1
}
