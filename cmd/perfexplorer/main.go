// Command perfexplorer runs PerfExplorer analysis scripts and inference
// rules against a profile repository — the scripted, automated analysis
// path of Fig. 3.
//
// Usage:
//
//	perfexplorer -repo DIR -script FILE [-rules DIR] [arg ...]
//	perfexplorer -server URL -script FILE [-rules DIR] [arg ...]
//	perfexplorer -repo DIR -list
//	perfexplorer -write-assets DIR
//
// Script arguments (usually application, experiment and trial names) are
// visible to the script as the `args` list. The bundled analysis scripts
// live under assets/scripts and the rule files under assets/rules.
//
// With -server URL the script runs against a remote perfdmfd profile
// service instead of a local directory: Utilities.getTrial, listings and
// saveTrial all go over the wire, so existing scripts work against a
// shared networked repository unchanged. -repo is ignored when -server is
// set.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"perfknow/internal/core"
	"perfknow/internal/diagnosis"
	"perfknow/internal/dmfclient"
	"perfknow/internal/parallel"
	"perfknow/internal/perfdmf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable arguments and streams, for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfexplorer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		repoDir     = fs.String("repo", "perfdata", "profile repository directory")
		serverURL   = fs.String("server", "", "remote perfdmfd URL (e.g. http://localhost:7360); overrides -repo")
		scriptPath  = fs.String("script", "", "analysis script (.pes) to run")
		rulesDir    = fs.String("rules", "assets/rules", "directory holding .prl rule files")
		list        = fs.Bool("list", false, "list repository contents and exit")
		writeAssets = fs.String("write-assets", "", "write the bundled rules and scripts under this directory and exit")
		jobs        = fs.Int("j", 0, "worker goroutines for parallel analysis (0 = GOMAXPROCS, 1 = sequential)")
		retries     = fs.Int("retries", 0, "max attempts per remote request, incl. the first (0 = client default, 1 = no retries)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	parallel.SetDefaultWorkers(*jobs)

	if *writeAssets != "" {
		if err := diagnosis.WriteAssets(*writeAssets); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "wrote knowledge base under %s/rules and %s/scripts\n", *writeAssets, *writeAssets)
		return 0
	}

	var store perfdmf.Store
	var client *dmfclient.Client
	if *serverURL != "" {
		var opts []dmfclient.Option
		if *retries > 0 {
			opts = append(opts, dmfclient.WithRetryPolicy(dmfclient.RetryPolicy{MaxAttempts: *retries}))
		}
		var err error
		client, err = dmfclient.New(*serverURL, opts...)
		if err != nil {
			return fail(stderr, err)
		}
		if err := client.Health(); err != nil {
			return fail(stderr, err)
		}
		store = client
	} else {
		repo, err := perfdmf.OpenRepository(*repoDir)
		if err != nil {
			return fail(stderr, err)
		}
		store = repo
	}

	if *list {
		for _, app := range store.Applications() {
			fmt.Fprintln(stdout, app)
			for _, exp := range store.Experiments(app) {
				fmt.Fprintf(stdout, "  %s\n", exp)
				for _, tr := range store.Trials(app, exp) {
					fmt.Fprintf(stdout, "    %s\n", tr)
				}
			}
		}
		// Remote listings cannot surface transport errors through the
		// Store signatures; an "empty" repository may really be an
		// unreachable server, so fail loudly rather than print nothing.
		if client != nil {
			if err := client.LastError(); err != nil {
				return fail(stderr, err)
			}
		}
		return 0
	}

	if *scriptPath == "" {
		fmt.Fprintln(stderr, "perfexplorer: -script is required (or -list / -write-assets)")
		fs.Usage()
		return 2
	}

	s := core.NewSession(store)
	s.SetOutput(stdout)
	diagnosis.Install(s, *rulesDir)
	diagnosis.SetArgs(s, fs.Args())
	if err := s.RunScriptFile(*scriptPath); err != nil {
		return fail(stderr, err)
	}
	// A listing that failed mid-script silently looked empty to the
	// script; tell the user the results may be based on missing data.
	if client != nil {
		if err := client.LastError(); err != nil {
			fmt.Fprintf(stderr, "perfexplorer: warning: a remote listing failed during the run (results may be incomplete): %v\n", err)
		}
	}
	if res := s.LastResult(); res != nil && len(res.Recommendations) > 0 {
		fmt.Fprintf(stdout, "\n%d recommendation(s) produced.\n", len(res.Recommendations))
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "perfexplorer:", err)
	return 1
}
