// Case study C (§III-C): power and energy modeling of GenIDLEST across
// compiler optimization levels.
//
// The component power model (Eq. 1 and Eq. 2) estimates per-processor watts
// from counter access rates; energy follows from runtime. Reproducing
// Table I: power moves by only a few percent across -O0..-O3 (package power
// is idle-dominated) while energy and FLOP/Joule move by an order of
// magnitude, so the right level depends on whether the user optimizes for
// power, energy, or both — which the power rules then recommend.
//
// Run with: go run ./examples/power_model
package main

import (
	"fmt"
	"log"
	"os"

	"perfknow"
)

func main() {
	cfg := perfknow.AltixConfig(16, 2)
	model := perfknow.Itanium2Power()
	repo := perfknow.NewRepository()

	levels := []perfknow.OptLevel{perfknow.O0, perfknow.O1, perfknow.O2, perfknow.O3}
	reports := map[perfknow.OptLevel]*perfknow.PowerReport{}
	var app, experiment string
	for _, lvl := range levels {
		c := perfknow.GenIDLESTDefaults(perfknow.Rib90(), perfknow.ModeMPI, 16)
		c.OptLevel = lvl
		trial, err := perfknow.RunGenIDLEST(cfg, c)
		if err != nil {
			log.Fatal(err)
		}
		trial.Name = lvl.String()
		app, experiment = trial.App, trial.Experiment
		if err := repo.Save(trial); err != nil {
			log.Fatal(err)
		}
		rep, err := model.Estimate(trial)
		if err != nil {
			log.Fatal(err)
		}
		reports[lvl] = rep
	}

	base := reports[perfknow.O0]
	fmt.Println("GenIDLEST 90rib, 16 MPI processes — relative to -O0 (Table I):")
	fmt.Printf("%-14s %8s %8s %8s %8s\n", "metric", "O0", "O1", "O2", "O3")
	row := func(name string, f func(*perfknow.PowerReport) float64) {
		fmt.Printf("%-14s", name)
		for _, lvl := range levels {
			fmt.Printf(" %8.3f", f(reports[lvl])/f(base))
		}
		fmt.Println()
	}
	row("Time", func(r *perfknow.PowerReport) float64 { return r.Seconds })
	row("Watts", func(r *perfknow.PowerReport) float64 { return r.WattsPerProc })
	row("Joules", func(r *perfknow.PowerReport) float64 { return r.Joules })
	row("FLOP/Joule", func(r *perfknow.PowerReport) float64 { return r.FLOPPerJoule })
	fmt.Printf("\nabsolute at -O0: %.1f W/processor over %.2f s → %.0f J\n\n",
		base.WattsPerProc, base.Seconds, base.Joules)

	// Let the power rules recommend levels.
	assets, err := os.MkdirTemp("", "perfknow-assets-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(assets)
	if err := perfknow.WriteAssets(assets); err != nil {
		log.Fatal(err)
	}
	s := perfknow.NewSession(repo)
	perfknow.InstallKnowledgeBase(s, assets+"/rules")
	perfknow.SetScriptArgs(s, []string{app, experiment})
	fmt.Println("recommendations from assets/rules/PowerRules.prl:")
	if err := s.RunScript(perfknow.ScriptPowerLevels); err != nil {
		log.Fatal(err)
	}
}
