// Parametric study: the multi-experiment data collection the paper's
// introduction motivates. A Study sweeps the MSA workload over a
// (schedule × thread-count) grid, stamps every trial with its parameter
// point, stores everything in a PerfDMF repository, and extracts the
// efficiency series of Fig. 4(b) — then hands one imbalanced point to the
// knowledge base for diagnosis.
//
// Run with: go run ./examples/parametric_study
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"perfknow"
)

func main() {
	cfg := perfknow.AltixConfig(16, 2)
	repo := perfknow.NewRepository()
	st := &perfknow.Study{Repo: repo, App: "MSAP", Experiment: "schedule x threads"}

	grid := perfknow.StudyGrid(map[string][]string{
		"schedule": {"static", "dynamic,1", "dynamic,16", "guided"},
		"threads":  {"1", "2", "4", "8", "16"},
	})
	fmt.Printf("running %d parameter points...\n", len(grid))
	trials, err := st.Run(grid, func(p perfknow.StudyPoint) (*perfknow.Trial, error) {
		threads, err := strconv.Atoi(p["threads"])
		if err != nil {
			return nil, err
		}
		sched, err := perfknow.ParseSchedule(p["schedule"])
		if err != nil {
			return nil, err
		}
		return perfknow.RunMSA(cfg, perfknow.MSAParams{
			Sequences: 400, MeanLen: 450, LenJitter: 220, Seed: 42,
			Threads: threads, Schedule: sched,
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	series, err := perfknow.StudySeries(trials, "threads", perfknow.TimeMetric)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-22s %10s %10s %10s %10s %10s\n", "schedule", "T(1)", "T(2)", "T(4)", "T(8)", "T(16)")
	for label, pts := range series {
		row := fmt.Sprintf("%-22s", label)
		base := pts[0].Y
		for _, pt := range pts {
			row += fmt.Sprintf(" %8.2fs", pt.Y/1e6)
			_ = base
		}
		fmt.Println(row)
	}
	fmt.Println("\nrelative efficiency at 16 threads:")
	for label, pts := range series {
		base := pts[0]
		last := pts[len(pts)-1]
		eff := base.Y / (last.X * last.Y) * base.X
		fmt.Printf("  %-22s %5.1f%%\n", label, 100*eff)
	}

	// Diagnose the imbalanced point straight out of the study repository.
	assets, err := os.MkdirTemp("", "perfknow-assets-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(assets)
	if err := perfknow.WriteAssets(assets); err != nil {
		log.Fatal(err)
	}
	s := perfknow.NewSession(repo)
	perfknow.InstallKnowledgeBase(s, assets+"/rules")
	perfknow.SetScriptArgs(s, []string{"MSAP", "schedule x threads", "schedule=static,threads=16"})
	fmt.Println("\ndiagnosing point schedule=static,threads=16:")
	if err := s.RunScript(perfknow.ScriptLoadBalance); err != nil {
		log.Fatal(err)
	}
}
