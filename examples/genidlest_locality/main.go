// Case study B (§III-B): data-locality tuning of the GenIDLEST fluid
// dynamics solver.
//
// The unoptimized OpenMP port initializes its arrays sequentially — so
// first-touch places every page on node 0 and all other nodes pay remote
// NUMAlink latency plus memory-controller queueing — and serializes its
// ghost-cell boundary copies on the master thread. This example reproduces
// the Fig. 5(b) scaling gap against MPI, runs the paper's three-step
// metric pipeline (inefficiency → stall decomposition → memory analysis),
// and shows the rules recommending the two fixes; the optimized run then
// closes the gap.
//
// Run with: go run ./examples/genidlest_locality
package main

import (
	"fmt"
	"log"
	"os"

	"perfknow"
)

func main() {
	cfg := perfknow.AltixConfig(16, 2)

	run := func(mode perfknow.GenIDLESTConfig) *perfknow.Trial {
		tr, err := perfknow.RunGenIDLEST(cfg, mode)
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}
	mainSec := func(t *perfknow.Trial) float64 {
		return t.Event("main").Inclusive[perfknow.TimeMetric][0] / 1e6
	}

	// Fig. 5(b): 90rib scaling, unoptimized vs optimized OpenMP vs MPI.
	fmt.Println("90rib total runtime in seconds (Fig. 5b):")
	fmt.Printf("%8s %14s %14s %14s\n", "threads", "unopt OpenMP", "opt OpenMP", "MPI")
	var unopt16, mpi16 *perfknow.Trial
	for _, th := range []int{1, 2, 4, 8, 16, 32} {
		u := perfknow.GenIDLESTDefaults(perfknow.Rib90(), perfknow.ModeOpenMP, th)
		o := u
		o.Optimized = true
		m := perfknow.GenIDLESTDefaults(perfknow.Rib90(), perfknow.ModeMPI, th)
		tu, to, tm := run(u), run(o), run(m)
		fmt.Printf("%8d %14.3f %14.3f %14.3f\n", th, mainSec(tu), mainSec(to), mainSec(tm))
		if th == 16 {
			unopt16, mpi16 = tu, tm
		}
	}
	fmt.Printf("unoptimized OpenMP lags MPI by %.2fx at 16 processors (paper: 11.16x)\n\n",
		mainSec(unopt16)/mainSec(mpi16))

	// The paper's three-step diagnosis on the unoptimized 16-thread run.
	repo := perfknow.NewRepository()
	base := perfknow.GenIDLESTDefaults(perfknow.Rib90(), perfknow.ModeOpenMP, 1)
	tbase := run(base)
	tbase.Name = "baseline_1"
	for _, t := range []*perfknow.Trial{unopt16, tbase} {
		if err := repo.Save(t); err != nil {
			log.Fatal(err)
		}
	}
	assets, err := os.MkdirTemp("", "perfknow-assets-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(assets)
	if err := perfknow.WriteAssets(assets); err != nil {
		log.Fatal(err)
	}
	s := perfknow.NewSession(repo)
	perfknow.InstallKnowledgeBase(s, assets+"/rules")

	steps := []struct {
		title, script string
		args          []string
	}{
		{"step 1: inefficiency metric", perfknow.ScriptInefficiency,
			[]string{unopt16.App, unopt16.Experiment, unopt16.Name}},
		{"step 2: stall decomposition", perfknow.ScriptStallDecomposition,
			[]string{unopt16.App, unopt16.Experiment, unopt16.Name}},
		{"step 3: memory analysis + scaling", perfknow.ScriptMemoryAnalysis,
			[]string{unopt16.App, unopt16.Experiment, unopt16.Name, "baseline_1"}},
	}
	for _, st := range steps {
		fmt.Println("==", st.title)
		perfknow.SetScriptArgs(s, st.args)
		if err := s.RunScript(st.script); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
