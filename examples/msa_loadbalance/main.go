// Case study A (§III-A): OpenMP load-balance tuning of the multiple
// sequence alignment application.
//
// The Smith-Waterman distance-matrix loop has triangular per-iteration
// costs, so the default static-even schedule leaves later threads idle.
// This example runs the workload under several schedules, shows the scaling
// behaviour of Fig. 4(b), and then lets the captured load-imbalance rule
// diagnose the static run and recommend the fix the paper found by hand:
// dynamic scheduling with chunk size 1.
//
// Run with: go run ./examples/msa_loadbalance
package main

import (
	"fmt"
	"log"
	"os"

	"perfknow"
)

func main() {
	cfg := perfknow.AltixConfig(16, 2)

	// Fig. 4(b): relative efficiency by schedule and thread count.
	fmt.Println("relative efficiency, 400-sequence problem (Fig. 4b):")
	fmt.Printf("%-12s %6s %6s %6s %6s\n", "schedule", "2", "4", "8", "16")
	for _, schedStr := range []string{"static", "dynamic,1", "dynamic,16", "guided"} {
		sched := perfknow.MustSchedule(schedStr)
		params := perfknow.MSAParams{
			Sequences: 400, MeanLen: 450, LenJitter: 220, Seed: 42, Schedule: sched,
		}
		eff, err := perfknow.MSAEfficiencySweep(cfg, params, []int{2, 4, 8, 16})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
			schedStr, 100*eff[2], 100*eff[4], 100*eff[8], 100*eff[16])
	}

	// Fig. 4(a): diagnose the static run with the captured knowledge.
	static, err := perfknow.RunMSA(cfg, perfknow.MSAParams{
		Sequences: 400, MeanLen: 450, LenJitter: 220, Seed: 42,
		Threads: 16, Schedule: perfknow.MustSchedule("static"),
	})
	if err != nil {
		log.Fatal(err)
	}
	repo := perfknow.NewRepository()
	if err := repo.Save(static); err != nil {
		log.Fatal(err)
	}

	assets, err := os.MkdirTemp("", "perfknow-assets-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(assets)
	if err := perfknow.WriteAssets(assets); err != nil {
		log.Fatal(err)
	}
	s := perfknow.NewSession(repo)
	perfknow.InstallKnowledgeBase(s, assets+"/rules")
	perfknow.SetScriptArgs(s, []string{static.App, static.Experiment, static.Name})

	fmt.Println("\ndiagnosing the static-even run (load_balance.pes):")
	if err := s.RunScript(perfknow.ScriptLoadBalance); err != nil {
		log.Fatal(err)
	}

	// The load-balance analysis is also available programmatically.
	fmt.Println("\nper-event imbalance (stddev/mean of per-thread time):")
	for _, lb := range perfknow.LoadBalanceAnalysis(static, perfknow.TimeMetric) {
		if lb.FractionOfTotal < 0.05 {
			continue
		}
		fmt.Printf("  %-18s ratio=%.3f share=%.1f%%\n", lb.Event, lb.Ratio, 100*lb.FractionOfTotal)
	}
}
