// Remote diagnosis: the quickstart flow against a networked repository.
//
// The same tiny UH program as examples/quickstart is compiled and executed
// on the simulated Altix — but instead of analyzing the profile in
// process, this example boots a perfdmfd profile service on a loopback
// port, uploads the trial through the client library, asks the server to
// run the stalls-per-cycle diagnosis script, and prints the
// recommendations it sends back. The printed script output is
// byte-identical to what the in-process session would have produced.
//
// Run with: go run ./examples/remote_diagnosis
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"time"

	"perfknow"
)

const source = `
program quickstart
proc main() {
    loop timestep 25 {
        call sweep
    }
}
proc sweep() {
    parallel loop rows 128 schedule(dynamic,1) {
        compute fp=3000 int=700 loads=1200 stores=600 branches=96 \
                region=grid off=0 len=4194304 reuse=8 dep=0.35 firsttouch
    }
}
`

func main() {
	// 1. Compile and execute, exactly as in examples/quickstart.
	prog, err := perfknow.ParseSource(source)
	if err != nil {
		log.Fatal(err)
	}
	ex, _, err := perfknow.Compile(prog, perfknow.O2, perfknow.DefaultInstrumentation(), nil)
	if err != nil {
		log.Fatal(err)
	}
	m := perfknow.NewMachine(perfknow.AltixConfig(8, 2))
	eng := perfknow.NewEngine(m, 8)
	trial, err := ex.Run(eng, "quickstart", "demo", "8_O2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %q on 8 threads: %d instrumented events\n",
		prog.Name, len(trial.Events))

	// 2. Boot a perfdmfd profile service on a loopback port. In production
	// this is `perfdmfd -repo DIR -addr HOST:PORT` on a shared machine. To
	// show the resilience layer at work, this demo server injects faults
	// (resets, truncation, 5xx bursts) on a deterministic seeded schedule —
	// the client retries through all of them.
	srv, err := perfknow.NewProfileServer(perfknow.ProfileServerConfig{
		Repo:          perfknow.NewRepository(),
		FaultInjector: perfknow.NewFaultSchedule(perfknow.FaultOptions{Seed: 7, Rate: 0.3}),
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close() // removes the materialized knowledge-base temp dir
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := srv.HTTPServer(ln.Addr().String())
	go func() { _ = httpSrv.Serve(ln) }()
	fmt.Printf("perfdmfd serving on http://%s\n", ln.Addr())

	// 3. Upload the trial through the client library. The client implements
	// the same Store interface as a local repository, so Save is Save.
	// Idempotent requests retry with exponential backoff; the upload carries
	// an idempotency key the server deduplicates, so even a retried POST
	// stores the trial exactly once.
	client, err := perfknow.DialRepository("http://"+ln.Addr().String(),
		perfknow.WithRetryPolicy(perfknow.RetryPolicy{
			MaxAttempts: 6,
			BaseDelay:   5 * time.Millisecond,
		}))
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Health(); err != nil {
		log.Fatal(err)
	}
	if err := client.Save(trial); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %s/%s/%s; server now holds %v\n",
		trial.App, trial.Experiment, trial.Name, client.Applications())

	// 4. Run the Fig. 1 analysis script server-side: the service spins up a
	// PerfExplorer session over the shared repository, runs the script plus
	// inference rules, and returns the output and recommendations.
	fmt.Println("\nrunning stalls_per_cycle.pes remotely:")
	resp, err := client.Diagnose(perfknow.DiagnoseRequest{
		Script: "stalls_per_cycle",
		Args:   []string{trial.App, trial.Experiment, trial.Name},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(resp.Stdout)
	fmt.Printf("\n%d recommendation(s) from the remote knowledge base:\n", len(resp.Recommendations))
	for _, rec := range resp.Recommendations {
		fmt.Printf("  [%s] %s\n", rec.Category, rec.Text)
	}

	if st := client.Stats(); st.Retries > 0 {
		fmt.Printf("\n(the client absorbed %d injected fault(s) across %d attempts)\n",
			st.Retries, st.Attempts)
	}

	// 5. Drain and stop, as the daemon does on SIGTERM.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver drained and stopped")
}
