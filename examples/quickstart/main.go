// Quickstart: the Fig. 1 flow end to end on a small compiled program.
//
// A tiny UH-language program is compiled with the OpenUH-style compiler
// (auto-instrumentation included), executed on the simulated Altix, stored
// in a PerfDMF repository, and then analyzed by the PerfExplorer sample
// script — whose inference rules print explanations and recommendations.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"perfknow"
)

const source = `
program quickstart
proc main() {
    loop timestep 25 {
        call sweep
    }
}
proc sweep() {
    parallel loop rows 128 schedule(dynamic,1) {
        compute fp=3000 int=700 loads=1200 stores=600 branches=96 \
                region=grid off=0 len=4194304 reuse=8 dep=0.35 firsttouch
    }
}
`

func main() {
	// 1. Compile: parse, optimize at -O2, insert instrumentation.
	prog, err := perfknow.ParseSource(source)
	if err != nil {
		log.Fatal(err)
	}
	ex, scores, err := perfknow.Compile(prog, perfknow.O2, perfknow.DefaultInstrumentation(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q at %s; %d regions scored for instrumentation\n",
		prog.Name, ex.Level, len(scores))

	// 2. Execute on a simulated 8-node Altix with 8 OpenMP threads.
	m := perfknow.NewMachine(perfknow.AltixConfig(8, 2))
	eng := perfknow.NewEngine(m, 8)
	trial, err := ex.Run(eng, "quickstart", "demo", "8_O2")
	if err != nil {
		log.Fatal(err)
	}
	main := trial.MainEvent(perfknow.TimeMetric)
	fmt.Printf("executed on 8 threads: %s ran %.2f ms with %d instrumented events\n",
		main.Name, meanOf(main.Inclusive[perfknow.TimeMetric])/1e3, len(trial.Events))

	// 3. Store the profile and analyze it with the Fig. 1 sample script.
	repo := perfknow.NewRepository()
	if err := repo.Save(trial); err != nil {
		log.Fatal(err)
	}
	assets, err := os.MkdirTemp("", "perfknow-assets-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(assets)
	if err := perfknow.WriteAssets(assets); err != nil {
		log.Fatal(err)
	}
	s := perfknow.NewSession(repo)
	perfknow.InstallKnowledgeBase(s, assets+"/rules")
	perfknow.SetScriptArgs(s, []string{trial.App, trial.Experiment, trial.Name})
	fmt.Println("\nrunning assets/scripts/stalls_per_cycle.pes:")
	if err := s.RunScript(perfknow.ScriptStallsPerCycle); err != nil {
		log.Fatal(err)
	}
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
