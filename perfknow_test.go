// Tests of the public facade: everything a downstream user reaches goes
// through package perfknow, so this file doubles as executable
// documentation of the API surface.
package perfknow_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"perfknow"
)

func TestPublicQuickstartFlow(t *testing.T) {
	// Compile a small program through the public compiler API.
	prog, err := perfknow.ParseSource(`
program api
proc main() {
    parallel loop work 64 schedule(dynamic,1) {
        compute fp=2000 int=400 loads=800 stores=200 dep=0.3 \
                region=grid off=0 len=1048576 reuse=8 firsttouch
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	ex, scores, err := perfknow.Compile(prog, perfknow.O2, perfknow.DefaultInstrumentation(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 {
		t.Fatal("no instrumentation scores")
	}
	m := perfknow.NewMachine(perfknow.AltixConfig(8, 2))
	eng := perfknow.NewEngine(m, 8)
	trial, err := ex.Run(eng, "api", "facade", "t1")
	if err != nil {
		t.Fatal(err)
	}
	if trial.MainEvent(perfknow.TimeMetric) == nil {
		t.Fatal("no main event")
	}

	// Store it, analyze it with the knowledge base.
	repo := perfknow.NewRepository()
	if err := repo.Save(trial); err != nil {
		t.Fatal(err)
	}
	assets := t.TempDir()
	if err := perfknow.WriteAssets(assets); err != nil {
		t.Fatal(err)
	}
	s := perfknow.NewSession(repo)
	var out bytes.Buffer
	s.SetOutput(&out)
	perfknow.InstallKnowledgeBase(s, assets+"/rules")
	perfknow.SetScriptArgs(s, []string{trial.App, trial.Experiment, trial.Name})
	if err := s.RunScript(perfknow.ScriptStallsPerCycle); err != nil {
		t.Fatal(err)
	}
	// The script ran; output may or may not contain firings for this tiny
	// kernel, but the session must have a result.
	if s.LastResult() == nil {
		t.Fatal("no rule-processing result")
	}
}

func TestPublicWorkloadsAndAnalysis(t *testing.T) {
	cfg := perfknow.AltixConfig(8, 2)
	static, err := perfknow.RunMSA(cfg, perfknow.MSAParams{
		Sequences: 48, MeanLen: 100, LenJitter: 50, Seed: 1,
		Threads: 8, Schedule: perfknow.MustSchedule("static"),
	})
	if err != nil {
		t.Fatal(err)
	}
	lbs := perfknow.LoadBalanceAnalysis(static, perfknow.TimeMetric)
	if len(lbs) == 0 {
		t.Fatal("no load balance rows")
	}
	dynamic, err := perfknow.RunMSA(cfg, perfknow.MSAParams{
		Sequences: 48, MeanLen: 100, LenJitter: 50, Seed: 1,
		Threads: 8, Schedule: perfknow.MustSchedule("dynamic,1"),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Trial algebra across the two runs.
	diff, err := perfknow.DiffTrials(static, dynamic)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Event("pairwise_inner") == nil {
		t.Fatal("diff lost events")
	}
	changes := perfknow.RelativeChange(dynamic, static, perfknow.TimeMetric, 0)
	if len(changes) == 0 {
		t.Fatal("no relative changes")
	}
	merged, err := perfknow.MergeTrials([]*perfknow.Trial{static, dynamic})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Event("pairwise_inner") == nil {
		t.Fatal("merge lost events")
	}
}

func TestPublicGenIDLESTAndPower(t *testing.T) {
	cfg := perfknow.AltixConfig(8, 2)
	c := perfknow.GenIDLESTDefaults(perfknow.Rib45(), perfknow.ModeMPI, 8)
	c.Timesteps, c.InnerIters = 1, 2
	trial, err := perfknow.RunGenIDLEST(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := perfknow.Itanium2Power().Estimate(trial)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WattsPerProc <= 0 || rep.Joules <= 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestPublicFormats(t *testing.T) {
	tr := perfknow.NewTrial("fmt", "exp", "t", 2)
	tr.AddMetric(perfknow.TimeMetric)
	e := tr.EnsureEvent("f")
	e.SetValue(perfknow.TimeMetric, 0, 10, 10)
	e.SetValue(perfknow.TimeMetric, 1, 20, 20)

	dir := t.TempDir()
	if err := perfknow.WriteTAU(dir, tr); err != nil {
		t.Fatal(err)
	}
	back, err := perfknow.ParseTAU(dir, "fmt", "exp", "t")
	if err != nil {
		t.Fatal(err)
	}
	if back.Event("f").Inclusive[perfknow.TimeMetric][1] != 20 {
		t.Fatal("TAU round trip lost data")
	}

	var csv bytes.Buffer
	if err := perfknow.WriteCSV(&csv, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := perfknow.ReadCSV(&csv); err != nil {
		t.Fatal(err)
	}

	gp := ` time   seconds   seconds    calls  ms/call  ms/call  name
 99.0       1.00      1.00       10   100.00   100.00  hot
`
	g, err := perfknow.ParseGprof(strings.NewReader(gp), "a", "e", "t")
	if err != nil {
		t.Fatal(err)
	}
	if g.Event("hot") == nil {
		t.Fatal("gprof import lost event")
	}
}

func TestPublicRuleEngine(t *testing.T) {
	eng := perfknow.NewRuleEngine()
	if err := eng.LoadString(`
rule "r"
when f : Thing ( v : value > 1 )
then recommend("cat", "act on " + v) end
`); err != nil {
		t.Fatal(err)
	}
	eng.Assert(perfknow.NewFact("Thing", map[string]any{"value": 5}))
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) != 1 || res.Recommendations[0].Category != "cat" {
		t.Fatalf("recommendations: %+v", res.Recommendations)
	}
}

func TestPublicFeedbackLoop(t *testing.T) {
	// TuneParallelLoops through the facade.
	prog, err := perfknow.ParseSource(`
program fb
proc main() {
    parallel loop rows 32 schedule(static) {
        compute fp=100 dep=0.2
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := perfknow.NewTrial("a", "e", "t", 4)
	tr.AddMetric(perfknow.TimeMetric)
	tr.AddMetric("CPU_CYCLES")
	rows := tr.EnsureEvent("rows")
	for th := 0; th < 4; th++ {
		f := float64(th + 1)
		rows.SetValue(perfknow.TimeMetric, th, 100*f, 100*f)
		rows.SetValue("CPU_CYCLES", th, 150000*f, 150000*f)
	}
	changes := perfknow.TuneParallelLoops(prog, tr, nil, 0)
	if len(changes) != 1 || !strings.HasPrefix(changes[0].New, "dynamic,") {
		t.Fatalf("changes: %+v", changes)
	}
}

func TestSmithWatermanPublic(t *testing.T) {
	seqs := perfknow.GenerateSequences(2, 50, 10, 3)
	score, cells := perfknow.SmithWaterman(seqs[0], seqs[1], perfknow.DefaultMSAScore())
	if cells != len(seqs[0])*len(seqs[1]) {
		t.Fatalf("cells = %d", cells)
	}
	if score < 0 {
		t.Fatalf("score = %d", score)
	}
}

func TestRepositoryOnDiskPublic(t *testing.T) {
	dir := t.TempDir()
	repo, err := perfknow.OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := perfknow.NewTrial("a", "e", "t", 1)
	tr.AddMetric(perfknow.TimeMetric)
	tr.EnsureEvent("x").SetValue(perfknow.TimeMetric, 0, 1, 1)
	if err := repo.Save(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir + "/a/e/t.json"); err != nil {
		t.Fatalf("trial not persisted: %v", err)
	}
}
